//! Scheduler-facing view of a running simulation.
//!
//! Two pieces hoisted out of the engine's hot path:
//!
//! * [`PendingSet`] — the released-but-unfinished jobs, kept **sorted by
//!   (release, id)** and updated incrementally on release/completion
//!   events. Policies iterate it instead of rescanning every job's state
//!   at every event (the per-event O(n) scan the decision core used to
//!   pay in each policy).
//! * [`SimView`] — the read-only view handed to
//!   [`crate::engine::OnlineScheduler::decide`], bundling the instance,
//!   the current time, per-job dynamic state, and the pending set, plus
//!   the deadline/remaining-time-per-target helpers that every heuristic
//!   of paper §V builds on (previously duplicated across policies).

use crate::activity::Target;
use crate::instance::Instance;
use crate::job::{Job, JobId};
use crate::spec::{CloudId, EdgeId, PlatformSpec};
use crate::state::{JobArena, JobState, PlatformState};
use mmsec_sim::Time;

/// Instantaneous unit/link availability under fault injection.
///
/// The engine owns one and flips flags as `UnitDown`/`UnitUp`/`LinkChange`
/// events fire; policies read it through the [`SimView`] accessors
/// ([`SimView::edge_available`], [`SimView::cloud_available`],
/// [`SimView::link_factor`], [`SimView::target_available`]) so they can
/// skip down units when placing. A view without an attached availability
/// (the fault-free engine path) reports every unit as up.
#[derive(Clone, Debug, PartialEq)]
pub struct Availability {
    /// Per-edge up flag, indexed by [`EdgeId`].
    pub edge_up: Vec<bool>,
    /// Per-cloud up flag, indexed by [`CloudId`].
    pub cloud_up: Vec<bool>,
    /// Per-edge link capacity factor (`1.0` healthy, `0.0` outage).
    pub link_factor: Vec<f64>,
}

impl Availability {
    /// Everything up on a `num_edge` × `num_cloud` platform.
    pub fn all_up(num_edge: usize, num_cloud: usize) -> Self {
        Availability {
            edge_up: vec![true; num_edge],
            cloud_up: vec![true; num_cloud],
            link_factor: vec![1.0; num_edge],
        }
    }
}

/// Released, unfinished jobs, kept sorted by `(release, id)`.
///
/// The engine owns one and maintains it incrementally: a job is inserted
/// when its release event fires and removed when it completes. Between
/// those events membership never changes, so policies get an O(pending)
/// iteration per decision instead of an O(n) rescan of all job states.
///
/// # Membership delta
///
/// Besides the sorted membership, the set records which jobs were
/// inserted and removed since the last [`PendingSet::clear_delta`]. The
/// engine clears the delta after every *invoked* `decide`, so a policy
/// that keeps its own priority structure (e.g. SSF-EDF's `(deadline, id)`
/// order) can update it from [`PendingSet::delta_inserted`] /
/// [`PendingSet::delta_removed`] instead of rebuilding and re-sorting
/// from the full membership at every event. When the engine skips decides
/// (decision-epoch gating), the delta accumulates across the skipped
/// events and the policy still observes every membership change exactly
/// once.
#[derive(Clone, Debug, Default)]
pub struct PendingSet {
    /// Sorted ascending; `Time` is the job's release date.
    entries: Vec<(Time, JobId)>,
    /// Jobs inserted since the last `clear_delta`, in insertion order.
    inserted: Vec<JobId>,
    /// Jobs removed since the last `clear_delta`, in removal order.
    removed: Vec<JobId>,
}

/// Equality is membership-only: two sets with the same entries compare
/// equal even when their (transient) deltas differ.
impl PartialEq for PendingSet {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl PendingSet {
    /// An empty set.
    pub fn new() -> Self {
        PendingSet::default()
    }

    /// Brute-force construction from a full state scan — for building
    /// ad-hoc views in tests and tools; the engine never calls this in
    /// its event loop.
    pub fn from_states(instance: &Instance, jobs: &[JobState]) -> Self {
        let mut set = PendingSet::new();
        for (i, st) in jobs.iter().enumerate() {
            if st.active() {
                set.insert(instance.job(JobId(i)).release, JobId(i));
            }
        }
        set
    }

    /// Like [`PendingSet::from_states`], scanning a [`JobArena`].
    pub fn from_arena(instance: &Instance, jobs: &JobArena) -> Self {
        let mut set = PendingSet::new();
        for i in 0..jobs.len() {
            if jobs.active(i) {
                set.insert(instance.job(JobId(i)).release, JobId(i));
            }
        }
        set
    }

    /// Inserts a job (keyed by its release date). No-op if already present.
    pub fn insert(&mut self, release: Time, id: JobId) {
        let key = (release, id);
        if let Err(pos) = self.entries.binary_search(&key) {
            self.entries.insert(pos, key);
            self.inserted.push(id);
        }
    }

    /// Removes a job (keyed by its release date). No-op if absent.
    pub fn remove(&mut self, release: Time, id: JobId) {
        if let Ok(pos) = self.entries.binary_search(&(release, id)) {
            self.entries.remove(pos);
            self.removed.push(id);
        }
    }

    /// Removes every entry (and forgets the delta).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clear_delta();
    }

    /// Jobs inserted since the last [`PendingSet::clear_delta`], in
    /// insertion order.
    pub fn delta_inserted(&self) -> &[JobId] {
        &self.inserted
    }

    /// Jobs removed since the last [`PendingSet::clear_delta`], in removal
    /// order.
    pub fn delta_removed(&self) -> &[JobId] {
        &self.removed
    }

    /// Forgets the recorded membership delta. The engine calls this after
    /// every invoked `decide`, so the delta a policy observes is exactly
    /// the membership change since the last time it was asked to decide.
    pub fn clear_delta(&mut self) {
        self.inserted.clear();
        self.removed.clear();
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no job is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when `id` (released at `release`) is in the set.
    pub fn contains(&self, release: Time, id: JobId) -> bool {
        self.entries.binary_search(&(release, id)).is_ok()
    }

    /// Pending jobs in `(release, id)` order.
    pub fn iter(&self) -> impl Iterator<Item = JobId> + '_ {
        self.entries.iter().map(|&(_, id)| id)
    }
}

/// Read-only view handed to [`crate::engine::OnlineScheduler::decide`].
pub struct SimView<'a> {
    /// The instance being simulated (jobs; its frozen spec is shadowed by
    /// the attached [`PlatformState`]'s spec when the platform mutated).
    instance: &'a Instance,
    /// Current virtual time.
    pub now: Time,
    /// Per-job dynamic state (struct-of-arrays), indexed by [`JobId`].
    pub jobs: &'a JobArena,
    /// Released, unfinished jobs (incrementally maintained by the engine).
    pub pending: &'a PendingSet,
    /// Current unit/link availability (membership tombstones composed
    /// with fault windows); `None` (the static fast path) means
    /// everything is up.
    availability: Option<&'a Availability>,
    /// The versioned platform runtime, when the engine attached one;
    /// `None` for ad-hoc views built outside the engine loop.
    platform: Option<&'a PlatformState>,
    /// Engine decision epoch (see [`SimView::decision_epoch`]); 0 for
    /// ad-hoc views built outside the engine loop.
    epoch: u64,
}

impl<'a> SimView<'a> {
    /// Builds a view (fault-free: every unit reported up).
    pub fn new(
        instance: &'a Instance,
        now: Time,
        jobs: &'a JobArena,
        pending: &'a PendingSet,
    ) -> Self {
        SimView {
            instance,
            now,
            jobs,
            pending,
            availability: None,
            platform: None,
            epoch: 0,
        }
    }

    /// Attaches the current availability state (builder style; used by
    /// ad-hoc views and tests — the engine attaches a whole
    /// [`PlatformState`] via [`SimView::with_platform`] instead).
    pub fn with_availability(mut self, availability: &'a Availability) -> Self {
        self.availability = Some(availability);
        self
    }

    /// Attaches the engine's versioned platform runtime (builder style).
    /// The view then reports the platform's current spec (shadowing the
    /// instance's frozen one), its composed availability overlay, and its
    /// [version](SimView::platform_version).
    pub fn with_platform(mut self, platform: &'a PlatformState) -> Self {
        self.availability = platform.overlay();
        self.platform = Some(platform);
        self
    }

    /// Attaches the engine's decision epoch (builder style).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The engine's decision epoch: a counter bumped only by transitions
    /// that can change a scheduling decision (job release, job completion,
    /// availability change, directive invalidation). Two views with the
    /// same epoch present the same decision-relevant state; policies and
    /// tests may use it to detect that nothing changed since the last
    /// decide.
    pub fn decision_epoch(&self) -> u64 {
        self.epoch
    }

    /// Jobs inserted into the pending set since the last invoked decide
    /// (see [`PendingSet::delta_inserted`]).
    pub fn delta_inserted(&self) -> &'a [JobId] {
        self.pending.delta_inserted()
    }

    /// Jobs removed from the pending set since the last invoked decide
    /// (see [`PendingSet::delta_removed`]).
    pub fn delta_removed(&self) -> &'a [JobId] {
        self.pending.delta_removed()
    }

    /// True when edge `j`'s computing unit is currently up.
    pub fn edge_available(&self, j: EdgeId) -> bool {
        self.availability.map_or(true, |a| a.edge_up[j.0])
    }

    /// True when cloud processor `k` is currently up.
    pub fn cloud_available(&self, k: CloudId) -> bool {
        self.availability.map_or(true, |a| a.cloud_up[k.0])
    }

    /// Current capacity factor of edge `j`'s communication link
    /// (`1.0` healthy, `0.0` outage).
    pub fn link_factor(&self, j: EdgeId) -> f64 {
        self.availability.map_or(1.0, |a| a.link_factor[j.0])
    }

    /// True when `target` can currently accept work from a job originating
    /// at `origin`: the edge target requires the origin's unit to be up,
    /// a cloud target requires that processor to be up. (A down origin
    /// edge or a link outage merely *pauses* cloud-bound communication —
    /// it does not invalidate the placement — so neither is checked here.)
    pub fn target_available(&self, origin: EdgeId, target: Target) -> bool {
        match target {
            Target::Edge => self.edge_available(origin),
            Target::Cloud(k) => self.cloud_available(k),
        }
    }

    /// The platform version this view describes: bumped by every
    /// committed permanent platform mutation, `0` for ad-hoc views with
    /// no attached [`PlatformState`]. Policies caching platform-shaped
    /// state (speed classes, projections, deadline tables) compare this
    /// against the version they built for and rebuild on mismatch.
    pub fn platform_version(&self) -> u64 {
        self.platform.map_or(0, |p| p.version())
    }

    /// The platform, as of this view's [version](SimView::platform_version)
    /// (the instance's frozen spec when no platform is attached).
    pub fn spec(&self) -> &'a PlatformSpec {
        match self.platform {
            Some(p) => p.spec(),
            None => &self.instance.spec,
        }
    }

    /// The static description of job `id`.
    pub fn job(&self, id: JobId) -> &'a Job {
        self.instance.job(id)
    }

    /// The dynamic state of job `id`, gathered into an AoS snapshot.
    /// Convenient off the hot path; hot loops should index the
    /// [`JobArena`] columns directly instead.
    pub fn state(&self, id: JobId) -> JobState {
        self.jobs.snapshot(id.0)
    }

    /// Jobs that are released and unfinished, in `(release, id)` order
    /// (an O(pending) walk of the incrementally maintained [`PendingSet`],
    /// not a state rescan).
    pub fn pending_jobs(&self) -> impl Iterator<Item = JobId> + 'a {
        self.pending.iter()
    }

    /// Number of pending jobs.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Stretch job `id` would incur if it completed at time `c`.
    pub fn stretch_if_completed_at(&self, id: JobId, c: Time) -> f64 {
        (c - self.job(id).release).seconds() / self.jobs.min_time[id.0]
    }

    /// Best dedicated-platform time `min(t^e_i, t^c_i)` of job `id` — the
    /// stretch denominator (read from the arena cache, which the engine
    /// keeps coherent with [`SimView::spec`]).
    pub fn min_time(&self, id: JobId) -> f64 {
        self.jobs.min_time[id.0]
    }

    /// Deadline of job `id` under target stretch `s`:
    /// `d_i = r_i + s · min(t^e_i, t^c_i)` (paper §V-D).
    pub fn deadline_under_stretch(&self, id: JobId, s: f64) -> Time {
        let job = self.job(id);
        job.release + Time::new(s * self.jobs.min_time[id.0])
    }

    /// Contention-free remaining duration of job `id` on `target`,
    /// accounting for the from-scratch reset when `target` differs from
    /// the committed one.
    pub fn duration_if_placed(&self, id: JobId, target: Target) -> f64 {
        self.jobs
            .duration_if_placed(id.0, self.job(id), target, self.spec())
    }

    /// Smallest contention-free remaining duration of job `id` over every
    /// target (edge + all cloud processors).
    pub fn best_duration(&self, id: JobId) -> f64 {
        let mut best = self.duration_if_placed(id, Target::Edge);
        for k in self.spec().clouds() {
            best = best.min(self.duration_if_placed(id, Target::Cloud(k)));
        }
        best
    }

    /// Stretch job `id` is already forced to at `now`: even if it finished
    /// as early as physically possible (alone, on its best target), its
    /// stretch would be at least this.
    pub fn forced_stretch(&self, id: JobId) -> f64 {
        let job = self.job(id);
        (self.now + Time::new(self.best_duration(id)) - job.release).seconds()
            / self.jobs.min_time[id.0]
    }

    /// Remaining local processing time of job `id` on its origin edge unit
    /// (seconds), assuming same-commitment progress.
    pub fn remaining_on_edge(&self, id: JobId) -> f64 {
        let job = self.job(id);
        self.jobs.remaining_work(id.0, job) / self.spec().edge_speed(job.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CloudId, EdgeId};

    fn fixture() -> (Instance, Vec<JobState>) {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build();
        // min_time = min(4/0.5, 2+4+1) = min(8, 7) = 7.
        let job = Job::new(EdgeId(0), 1.0, 4.0, 2.0, 1.0);
        let inst = Instance::new(spec, vec![job]).unwrap();
        let mut states = vec![JobState::default()];
        states[0].released = true;
        (inst, states)
    }

    #[test]
    fn pending_set_insert_remove_sorted() {
        let mut set = PendingSet::new();
        set.insert(Time::new(2.0), JobId(5));
        set.insert(Time::new(1.0), JobId(9));
        set.insert(Time::new(2.0), JobId(1));
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            vec![JobId(9), JobId(1), JobId(5)]
        );
        assert_eq!(set.len(), 3);
        assert!(set.contains(Time::new(1.0), JobId(9)));
        // Double insert is a no-op.
        set.insert(Time::new(1.0), JobId(9));
        assert_eq!(set.len(), 3);
        set.remove(Time::new(2.0), JobId(1));
        assert!(!set.contains(Time::new(2.0), JobId(1)));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![JobId(9), JobId(5)]);
        // Removing an absent entry is a no-op.
        set.remove(Time::new(7.0), JobId(3));
        assert_eq!(set.len(), 2);
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn delta_tracks_membership_changes_between_clears() {
        let mut set = PendingSet::new();
        set.insert(Time::new(1.0), JobId(4));
        set.insert(Time::new(2.0), JobId(7));
        assert_eq!(set.delta_inserted(), &[JobId(4), JobId(7)]);
        assert!(set.delta_removed().is_empty());
        // No-op insert/remove leave the delta alone.
        set.insert(Time::new(1.0), JobId(4));
        set.remove(Time::new(9.0), JobId(1));
        assert_eq!(set.delta_inserted(), &[JobId(4), JobId(7)]);
        assert!(set.delta_removed().is_empty());

        set.clear_delta();
        assert!(set.delta_inserted().is_empty());
        set.remove(Time::new(2.0), JobId(7));
        assert_eq!(set.delta_removed(), &[JobId(7)]);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![JobId(4)]);

        // Equality ignores the delta: same membership, different history.
        let mut other = PendingSet::new();
        other.insert(Time::new(1.0), JobId(4));
        other.clear_delta();
        assert_eq!(set, other);

        set.clear();
        assert!(set.delta_removed().is_empty() && set.delta_inserted().is_empty());
    }

    #[test]
    fn view_exposes_epoch_and_delta() {
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let mut pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        assert_eq!(view.decision_epoch(), 0);
        {
            let view = SimView::new(&inst, Time::ZERO, &arena, &pending).with_epoch(17);
            assert_eq!(view.decision_epoch(), 17);
            assert_eq!(view.delta_inserted(), &[JobId(0)]);
            assert!(view.delta_removed().is_empty());
        }
        pending.clear_delta();
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        assert!(view.delta_inserted().is_empty());
    }

    #[test]
    fn from_states_matches_active_scan() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 3.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 1.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 2.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); 3];
        states[0].released = true;
        states[1].released = true;
        states[2].released = true;
        states[2].finished = true; // completed: not pending
        let set = PendingSet::from_states(&inst, &states);
        // Release order: job 1 (r=1) before job 0 (r=3).
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![JobId(1), JobId(0)]);
        // The arena scan agrees with the snapshot scan.
        let arena = JobArena::from_states(&inst, &states);
        assert_eq!(PendingSet::from_arena(&inst, &arena), set);
    }

    #[test]
    fn view_helpers() {
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(2.0), &arena, &pending);
        assert_eq!(view.num_pending(), 1);
        assert_eq!(view.pending_jobs().collect::<Vec<_>>(), vec![JobId(0)]);
        // min_time = min(8, 7) = 7; completed at 8 → stretch (8-1)/7 = 1.
        assert!((view.stretch_if_completed_at(JobId(0), Time::new(8.0)) - 1.0).abs() < 1e-12);
        assert!((view.min_time(JobId(0)) - 7.0).abs() < 1e-12);
        // Deadline under stretch 2: r + 2·7 = 15.
        assert_eq!(view.deadline_under_stretch(JobId(0), 2.0), Time::new(15.0));
    }

    #[test]
    fn availability_accessors_default_to_up() {
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        assert!(view.edge_available(EdgeId(0)));
        assert!(view.cloud_available(CloudId(1)));
        assert_eq!(view.link_factor(EdgeId(0)), 1.0);

        let mut avail = Availability::all_up(1, 2);
        avail.cloud_up[0] = false;
        avail.edge_up[0] = false;
        avail.link_factor[0] = 0.25;
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending).with_availability(&avail);
        assert!(!view.edge_available(EdgeId(0)));
        assert!(!view.cloud_available(CloudId(0)));
        assert!(view.cloud_available(CloudId(1)));
        assert!(!view.target_available(EdgeId(0), Target::Edge));
        assert!(!view.target_available(EdgeId(0), Target::Cloud(CloudId(0))));
        assert!(view.target_available(EdgeId(0), Target::Cloud(CloudId(1))));
        assert_eq!(view.link_factor(EdgeId(0)), 0.25);
    }

    #[test]
    fn duration_helpers() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.5;
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(4.0), &arena, &pending);
        // Continue on cloud 0: 0.5 up + 4 work + 1 dn = 5.5.
        assert_eq!(
            view.duration_if_placed(JobId(0), Target::Cloud(CloudId(0))),
            5.5
        );
        // Fresh on cloud 1: 2 + 4 + 1 = 7; fresh on edge: 8.
        assert_eq!(
            view.duration_if_placed(JobId(0), Target::Cloud(CloudId(1))),
            7.0
        );
        assert_eq!(view.duration_if_placed(JobId(0), Target::Edge), 8.0);
        assert_eq!(view.best_duration(JobId(0)), 5.5);
        // Forced stretch at now=4: (4 + 5.5 − 1) / 7.
        assert!((view.forced_stretch(JobId(0)) - 8.5 / 7.0).abs() < 1e-12);
        // Remaining on edge: 4 work / 0.5 speed.
        assert_eq!(view.remaining_on_edge(JobId(0)), 8.0);
    }
}
