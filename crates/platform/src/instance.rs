//! A problem instance: platform + jobs, with a dependency-free text format.
//!
//! The format is line-oriented so instances can be archived alongside
//! experiment outputs and diffed:
//!
//! ```text
//! # mmsec-instance v1
//! edge 0.5
//! edge 0.1
//! cloud 1
//! window 0 5 10
//! job 0 0 4 2 2        # origin release work up dn
//! ```

use crate::job::{Job, JobId};
use crate::spec::{CloudId, EdgeId, PlatformSpec, SpecError};
use mmsec_sim::{Interval, Time};
use std::fmt;

/// Errors raised while validating or parsing an instance.
#[derive(Clone, Debug, PartialEq)]
pub enum InstanceError {
    /// The platform spec is invalid.
    Spec(SpecError),
    /// A job references an edge unit that does not exist.
    OriginOutOfRange {
        /// Index of the offending job.
        job: usize,
        /// Its origin index.
        origin: usize,
    },
    /// A parse error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Spec(e) => write!(f, "platform: {e}"),
            InstanceError::OriginOutOfRange { job, origin } => {
                write!(
                    f,
                    "job {job} originates from nonexistent edge unit {origin}"
                )
            }
            InstanceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<SpecError> for InstanceError {
    fn from(e: SpecError) -> Self {
        InstanceError::Spec(e)
    }
}

/// A complete MinMaxStretch-EdgeCloud instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// The platform.
    pub spec: PlatformSpec,
    /// The jobs, indexed by [`JobId`].
    pub jobs: Vec<Job>,
}

impl Instance {
    /// Creates and validates an instance.
    pub fn new(spec: PlatformSpec, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        let inst = Instance { spec, jobs };
        inst.validate()?;
        Ok(inst)
    }

    /// Checks platform validity and job/platform consistency.
    pub fn validate(&self) -> Result<(), InstanceError> {
        self.spec.validate()?;
        for (i, job) in self.jobs.iter().enumerate() {
            if job.origin.0 >= self.spec.num_edge() {
                return Err(InstanceError::OriginOutOfRange {
                    job: i,
                    origin: job.origin.0,
                });
            }
        }
        Ok(())
    }

    /// Number of jobs (`n`).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The job with the given id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.0]
    }

    /// Iterator over `(JobId, &Job)`.
    pub fn iter_jobs(&self) -> impl Iterator<Item = (JobId, &Job)> {
        self.jobs.iter().enumerate().map(|(i, j)| (JobId(i), j))
    }

    /// Ratio `Δ` between the longest and the shortest job (minimum
    /// dedicated times) — the paper's competitive-ratio parameter.
    pub fn delta(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for j in &self.jobs {
            let t = j.min_time(&self.spec);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        if self.jobs.is_empty() {
            1.0
        } else {
            hi / lo
        }
    }

    /// Serializes to the `mmsec-instance v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# mmsec-instance v1\n");
        for j in self.spec.edges() {
            out.push_str(&format!("edge {}\n", fmt_f64(self.spec.edge_speed(j))));
        }
        for k in self.spec.clouds() {
            out.push_str(&format!("cloud {}\n", fmt_f64(self.spec.cloud_speed(k))));
        }
        for k in self.spec.clouds() {
            for w in self.spec.cloud_unavailability(k).iter() {
                out.push_str(&format!(
                    "window {} {} {}\n",
                    k.0,
                    fmt_f64(w.start().seconds()),
                    fmt_f64(w.end().seconds())
                ));
            }
        }
        for job in &self.jobs {
            out.push_str(&format!(
                "job {} {} {} {} {}\n",
                job.origin.0,
                fmt_f64(job.release.seconds()),
                fmt_f64(job.work),
                fmt_f64(job.up),
                fmt_f64(job.dn)
            ));
        }
        out
    }

    /// Parses the `mmsec-instance v1` text format.
    pub fn from_text(text: &str) -> Result<Self, InstanceError> {
        let mut edge_speeds = Vec::new();
        let mut cloud_speeds = Vec::new();
        let mut windows: Vec<(usize, f64, f64)> = Vec::new();
        let mut jobs = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let kind = toks.next().expect("nonempty line has a first token");
            let parse = |tok: Option<&str>, what: &str| -> Result<f64, InstanceError> {
                tok.ok_or_else(|| InstanceError::Parse {
                    line: lineno + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<f64>()
                .map_err(|e| InstanceError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what}: {e}"),
                })
            };
            match kind {
                "edge" => edge_speeds.push(parse(toks.next(), "edge speed")?),
                "cloud" => cloud_speeds.push(parse(toks.next(), "cloud speed")?),
                "window" => {
                    let k = parse(toks.next(), "cloud index")? as usize;
                    let a = parse(toks.next(), "window start")?;
                    let b = parse(toks.next(), "window end")?;
                    windows.push((k, a, b));
                }
                "job" => {
                    let origin = parse(toks.next(), "origin")? as usize;
                    let release = parse(toks.next(), "release")?;
                    let work = parse(toks.next(), "work")?;
                    let up = parse(toks.next(), "uplink")?;
                    let dn = parse(toks.next(), "downlink")?;
                    jobs.push(Job::new(EdgeId(origin), release, work, up, dn));
                }
                other => {
                    return Err(InstanceError::Parse {
                        line: lineno + 1,
                        message: format!("unknown record kind {other:?}"),
                    })
                }
            }
        }

        let mut spec = PlatformSpec::heterogeneous(edge_speeds, cloud_speeds);
        for (k, a, b) in windows {
            if k >= spec.num_cloud() {
                return Err(InstanceError::Spec(SpecError::WindowOutOfRange {
                    cloud: k,
                }));
            }
            spec = spec.with_cloud_unavailability(
                CloudId(k),
                &[Interval::new(Time::new(a), Time::new(b))],
            );
        }
        Instance::new(spec, jobs)
    }
}

/// Formats an `f64` with full round-trip precision but without trailing
/// noise for short decimal values.
fn fmt_f64(x: f64) -> String {
    let short = format!("{x}");
    if short.parse::<f64>() == Ok(x) {
        short
    } else {
        format!("{x:.17}")
    }
}

/// The paper's Figure 1 worked example: one edge unit at speed 1/3, one
/// cloud processor, six jobs. Used by examples, tests, and docs.
pub fn figure1_instance() -> Instance {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0 / 3.0], 1);
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 1.0, 5.0, 5.0),       // J1
        Job::new(EdgeId(0), 0.0, 4.0, 2.0, 2.0),       // J2
        Job::new(EdgeId(0), 3.0, 2.0, 1.0, 1.0),       // J3
        Job::new(EdgeId(0), 5.0, 4.0 / 3.0, 5.0, 5.0), // J4
        Job::new(EdgeId(0), 5.0, 2.0, 1.0, 1.0),       // J5
        Job::new(EdgeId(0), 6.0, 1.0 / 3.0, 5.0, 5.0), // J6
    ];
    Instance::new(spec, jobs).expect("figure 1 instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_is_valid() {
        let inst = figure1_instance();
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.spec.num_edge(), 1);
        assert_eq!(inst.spec.num_cloud(), 1);
        // J2 min time is 8 (cloud), J6 min time is 1 (edge).
        assert_eq!(inst.job(JobId(1)).min_time(&inst.spec), 8.0);
        assert_eq!(inst.job(JobId(5)).min_time(&inst.spec), 1.0);
        assert_eq!(inst.delta(), 8.0);
    }

    #[test]
    fn origin_out_of_range_rejected() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
        let jobs = vec![Job::new(EdgeId(3), 0.0, 1.0, 0.0, 0.0)];
        assert_eq!(
            Instance::new(spec, jobs),
            Err(InstanceError::OriginOutOfRange { job: 0, origin: 3 })
        );
    }

    #[test]
    fn text_roundtrip() {
        let inst = figure1_instance();
        let text = inst.to_text();
        let back = Instance::from_text(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn text_roundtrip_with_windows() {
        let spec = PlatformSpec::homogeneous_cloud(vec![0.5], 2).with_cloud_unavailability(
            CloudId(1),
            &[Interval::from_secs(1.0, 2.0), Interval::from_secs(4.0, 6.0)],
        );
        let jobs = vec![Job::new(EdgeId(0), 0.25, 1.5, 0.125, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let back = Instance::from_text(&inst.to_text()).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Instance::from_text("edge 1\nbogus 3\n").unwrap_err();
        assert!(matches!(err, InstanceError::Parse { line: 2, .. }));
        let err = Instance::from_text("edge 1\ncloud 1\njob 0 0\n").unwrap_err();
        assert!(matches!(err, InstanceError::Parse { line: 3, .. }));
        let err = Instance::from_text("edge 1\njob 0 0 1 abc 0\n").unwrap_err();
        assert!(matches!(err, InstanceError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nedge 1 # the only edge\ncloud 1\n  \njob 0 0 1 0 0\n";
        let inst = Instance::from_text(text).unwrap();
        assert_eq!(inst.num_jobs(), 1);
    }

    #[test]
    fn delta_on_irregular_jobs() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 0);
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        assert_eq!(inst.delta(), 10.0);
    }

    #[test]
    fn fmt_f64_roundtrips_oddballs() {
        for x in [1.0 / 3.0, 6.0 / 37.0, 0.1, 95.0, 1e-9] {
            assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
        }
    }
}
