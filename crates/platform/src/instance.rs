//! A problem instance: platform + jobs, with a dependency-free text format.
//!
//! The format is line-oriented so instances can be archived alongside
//! experiment outputs and diffed:
//!
//! ```text
//! # mmsec-instance v1
//! edge 0.5
//! edge 0.1
//! cloud 1
//! window 0 5 10
//! job 0 0 4 2 2        # origin release work up dn
//! ```
//!
//! Tiered (continuum) platforms serialize as `v2`, which adds `hop`
//! records (one per tier boundary, in route order: per-volume uplink and
//! downlink factors) and annotates each `cloud` with its tier:
//!
//! ```text
//! # mmsec-instance v2
//! edge 0.5
//! hop 1 1              # edge→tier-1 link factors (up dn)
//! hop 2.5 3            # tier-1→tier-2 link factors
//! cloud 1 1            # speed tier
//! cloud 4 2
//! job 0 0 4 2 2
//! ```
//!
//! The parser accepts both versions; flat instances keep emitting `v1`
//! byte-for-byte, so archived outputs stay diffable.

use crate::job::{Job, JobId};
use crate::spec::{CloudId, EdgeId, PlatformSpec, SpecBuilder, SpecError};
use crate::tier::TierTopology;
use mmsec_sim::{Interval, Time};
use std::fmt;

/// Errors raised while validating or parsing an instance.
#[derive(Clone, Debug, PartialEq)]
pub enum InstanceError {
    /// The platform spec is invalid.
    Spec(SpecError),
    /// A job references an edge unit that does not exist.
    OriginOutOfRange {
        /// Index of the offending job.
        job: usize,
        /// Its origin index.
        origin: usize,
    },
    /// A parse error with line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl InstanceError {
    /// A stable kebab-case identifier for this error class (the serve
    /// protocol's `reject` records carry it as their `code` field).
    pub fn code(&self) -> &'static str {
        match self {
            InstanceError::Spec(_) => "bad-spec",
            InstanceError::OriginOutOfRange { .. } => "origin-out-of-range",
            InstanceError::Parse { .. } => "parse-error",
        }
    }
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Spec(e) => write!(f, "platform: {e}"),
            InstanceError::OriginOutOfRange { job, origin } => {
                write!(
                    f,
                    "job {job} originates from nonexistent edge unit {origin}"
                )
            }
            InstanceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<SpecError> for InstanceError {
    fn from(e: SpecError) -> Self {
        InstanceError::Spec(e)
    }
}

/// A complete MinMaxStretch-EdgeCloud instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// The platform.
    pub spec: PlatformSpec,
    /// The jobs, indexed by [`JobId`].
    pub jobs: Vec<Job>,
}

impl Instance {
    /// Creates and validates an instance. This is the low-level form for
    /// callers that already hold a [`PlatformSpec`] and a job vector;
    /// [`Instance::builder`] is the typed constructor for everything
    /// else.
    pub fn new(spec: PlatformSpec, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        let inst = Instance { spec, jobs };
        inst.validate()?;
        Ok(inst)
    }

    /// Starts a typed builder: platform (edges, tiers, clouds, links,
    /// unavailability windows) and jobs in one chain.
    ///
    /// ```
    /// use mmsec_platform::Instance;
    /// let inst = Instance::builder()
    ///     .edge(0.5)
    ///     .tier(1.0, 1.0)
    ///     .cloud_pool(2)
    ///     .job(0, 0.0, 4.0, 2.0, 1.0)
    ///     .build();
    /// assert_eq!(inst.num_jobs(), 1);
    /// ```
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder {
            spec: PlatformSpec::builder(),
            jobs: Vec::new(),
        }
    }

    /// Checks platform validity and job/platform consistency.
    pub fn validate(&self) -> Result<(), InstanceError> {
        self.spec.validate()?;
        for (i, job) in self.jobs.iter().enumerate() {
            if job.origin.0 >= self.spec.num_edge() {
                return Err(InstanceError::OriginOutOfRange {
                    job: i,
                    origin: job.origin.0,
                });
            }
        }
        Ok(())
    }

    /// Number of jobs (`n`).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The job with the given id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.0]
    }

    /// Iterator over `(JobId, &Job)`.
    pub fn iter_jobs(&self) -> impl Iterator<Item = (JobId, &Job)> {
        self.jobs.iter().enumerate().map(|(i, j)| (JobId(i), j))
    }

    /// Ratio `Δ` between the longest and the shortest job (minimum
    /// dedicated times) — the paper's competitive-ratio parameter.
    pub fn delta(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for j in &self.jobs {
            let t = j.min_time(&self.spec);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        if self.jobs.is_empty() {
            1.0
        } else {
            hi / lo
        }
    }

    /// Serializes to the `mmsec-instance` text format: `v1` for flat
    /// platforms (byte-compatible with every archived output), `v2` with
    /// `hop` records and tier-annotated `cloud` records when tiered.
    pub fn to_text(&self) -> String {
        let tiers = self.spec.tier_topology();
        let mut out = String::from(if tiers.is_some() {
            "# mmsec-instance v2\n"
        } else {
            "# mmsec-instance v1\n"
        });
        for j in self.spec.edges() {
            out.push_str(&format!("edge {}\n", fmt_f64(self.spec.edge_speed(j))));
        }
        if let Some(t) = tiers {
            for h in 0..t.depth() {
                let (up, dn) = t.hop(h);
                out.push_str(&format!("hop {} {}\n", fmt_f64(up), fmt_f64(dn)));
            }
        }
        for k in self.spec.clouds() {
            match tiers {
                None => out.push_str(&format!("cloud {}\n", fmt_f64(self.spec.cloud_speed(k)))),
                Some(t) => out.push_str(&format!(
                    "cloud {} {}\n",
                    fmt_f64(self.spec.cloud_speed(k)),
                    t.tier_of(k)
                )),
            }
        }
        for k in self.spec.clouds() {
            for w in self.spec.cloud_unavailability(k).iter() {
                out.push_str(&format!(
                    "window {} {} {}\n",
                    k.0,
                    fmt_f64(w.start().seconds()),
                    fmt_f64(w.end().seconds())
                ));
            }
        }
        for job in &self.jobs {
            out.push_str(&format!(
                "job {} {} {} {} {}\n",
                job.origin.0,
                fmt_f64(job.release.seconds()),
                fmt_f64(job.work),
                fmt_f64(job.up),
                fmt_f64(job.dn)
            ));
        }
        out
    }

    /// Parses the `mmsec-instance` text format, both `v1` (flat) and
    /// `v2` (tiered). A `v2` `cloud` record may omit its tier, which
    /// then defaults to the deepest one.
    pub fn from_text(text: &str) -> Result<Self, InstanceError> {
        let mut edge_speeds = Vec::new();
        let mut cloud_speeds = Vec::new();
        let mut cloud_tiers: Vec<Option<usize>> = Vec::new();
        let mut tiered_cloud_line: Option<usize> = None;
        let mut hops: Vec<(f64, f64)> = Vec::new();
        let mut windows: Vec<(usize, f64, f64)> = Vec::new();
        let mut jobs = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut toks = line.split_whitespace();
            let kind = toks.next().expect("nonempty line has a first token");
            let parse = |tok: Option<&str>, what: &str| -> Result<f64, InstanceError> {
                tok.ok_or_else(|| InstanceError::Parse {
                    line: lineno + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<f64>()
                .map_err(|e| InstanceError::Parse {
                    line: lineno + 1,
                    message: format!("bad {what}: {e}"),
                })
            };
            match kind {
                "edge" => edge_speeds.push(parse(toks.next(), "edge speed")?),
                "cloud" => {
                    cloud_speeds.push(parse(toks.next(), "cloud speed")?);
                    cloud_tiers.push(match toks.next() {
                        None => None,
                        Some(t) => {
                            tiered_cloud_line.get_or_insert(lineno + 1);
                            Some(t.parse::<usize>().map_err(|e| InstanceError::Parse {
                                line: lineno + 1,
                                message: format!("bad cloud tier: {e}"),
                            })?)
                        }
                    });
                }
                "hop" => {
                    let up = parse(toks.next(), "hop uplink factor")?;
                    let dn = parse(toks.next(), "hop downlink factor")?;
                    hops.push((up, dn));
                }
                "window" => {
                    let k = parse(toks.next(), "cloud index")? as usize;
                    let a = parse(toks.next(), "window start")?;
                    let b = parse(toks.next(), "window end")?;
                    windows.push((k, a, b));
                }
                "job" => {
                    let origin = parse(toks.next(), "origin")? as usize;
                    let release = parse(toks.next(), "release")?;
                    let work = parse(toks.next(), "work")?;
                    let up = parse(toks.next(), "uplink")?;
                    let dn = parse(toks.next(), "downlink")?;
                    jobs.push(Job::new(EdgeId(origin), release, work, up, dn));
                }
                other => {
                    return Err(InstanceError::Parse {
                        line: lineno + 1,
                        message: format!("unknown record kind {other:?}"),
                    })
                }
            }
        }

        let tiers = if hops.is_empty() {
            if let Some(line) = tiered_cloud_line {
                return Err(InstanceError::Parse {
                    line,
                    message: "cloud tier given but no hop records".into(),
                });
            }
            None
        } else {
            let depth = hops.len();
            let tier_of: Vec<usize> = cloud_tiers.iter().map(|t| t.unwrap_or(depth)).collect();
            Some(TierTopology::new(&hops, tier_of)?)
        };
        let mut spec = PlatformSpec::try_from_parts(edge_speeds, cloud_speeds, tiers)?;
        for (k, a, b) in windows {
            if k >= spec.num_cloud() {
                return Err(InstanceError::Spec(SpecError::WindowOutOfRange {
                    cloud: k,
                }));
            }
            spec = spec.with_cloud_unavailability(
                CloudId(k),
                &[Interval::new(Time::new(a), Time::new(b))],
            );
        }
        Instance::new(spec, jobs)
    }
}

/// Typed constructor for [`Instance`]: the platform chain of
/// [`SpecBuilder`] plus job records, finished by
/// [`build`](InstanceBuilder::build) /
/// [`try_build`](InstanceBuilder::try_build). Obtained from
/// [`Instance::builder`].
#[derive(Clone, Debug, Default)]
pub struct InstanceBuilder {
    spec: SpecBuilder,
    jobs: Vec<Job>,
}

impl InstanceBuilder {
    /// Adds one edge unit with the given speed.
    pub fn edge(mut self, speed: f64) -> Self {
        self.spec = self.spec.edge(speed);
        self
    }

    /// Adds one edge unit per speed.
    pub fn edges(mut self, speeds: impl IntoIterator<Item = f64>) -> Self {
        self.spec = self.spec.edges(speeds);
        self
    }

    /// Opens the next tier: clouds added after this call sit one hop
    /// further from the edges, behind a link with the given per-volume
    /// uplink/downlink factors.
    pub fn tier(mut self, up: f64, dn: f64) -> Self {
        self.spec = self.spec.tier(up, dn);
        self
    }

    /// Adds one cloud processor at the current tier.
    pub fn cloud(mut self, speed: f64) -> Self {
        self.spec = self.spec.cloud(speed);
        self
    }

    /// Adds one cloud processor per speed, all at the current tier.
    pub fn clouds(mut self, speeds: impl IntoIterator<Item = f64>) -> Self {
        self.spec = self.spec.clouds(speeds);
        self
    }

    /// Adds `n` unit-speed cloud processors at the current tier.
    pub fn cloud_pool(mut self, n: usize) -> Self {
        self.spec = self.spec.cloud_pool(n);
        self
    }

    /// Declares one unavailability window on the given cloud.
    pub fn unavailability(mut self, cloud: CloudId, window: Interval) -> Self {
        self.spec = self.spec.unavailability(cloud, window);
        self
    }

    /// Adds one job: origin edge index, release date, work, uplink and
    /// downlink times.
    pub fn job(mut self, origin: usize, release: f64, work: f64, up: f64, dn: f64) -> Self {
        self.jobs
            .push(Job::new(EdgeId(origin), release, work, up, dn));
        self
    }

    /// Adds pre-built jobs in order.
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = Job>) -> Self {
        self.jobs.extend(jobs);
        self
    }

    /// Finishes the builder, validating platform and jobs.
    pub fn try_build(self) -> Result<Instance, InstanceError> {
        Instance::new(self.spec.try_build()?, self.jobs)
    }

    /// Finishes the builder; panics on an invalid platform or job set.
    pub fn build(self) -> Instance {
        self.try_build().expect("invalid instance")
    }
}

/// Formats an `f64` with full round-trip precision but without trailing
/// noise for short decimal values.
fn fmt_f64(x: f64) -> String {
    let short = format!("{x}");
    if short.parse::<f64>() == Ok(x) {
        short
    } else {
        format!("{x:.17}")
    }
}

/// The paper's Figure 1 worked example: one edge unit at speed 1/3, one
/// cloud processor, six jobs. Used by examples, tests, and docs.
pub fn figure1_instance() -> Instance {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0 / 3.0])
        .cloud_pool(1)
        .build();
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 1.0, 5.0, 5.0),       // J1
        Job::new(EdgeId(0), 0.0, 4.0, 2.0, 2.0),       // J2
        Job::new(EdgeId(0), 3.0, 2.0, 1.0, 1.0),       // J3
        Job::new(EdgeId(0), 5.0, 4.0 / 3.0, 5.0, 5.0), // J4
        Job::new(EdgeId(0), 5.0, 2.0, 1.0, 1.0),       // J5
        Job::new(EdgeId(0), 6.0, 1.0 / 3.0, 5.0, 5.0), // J6
    ];
    Instance::new(spec, jobs).expect("figure 1 instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_is_valid() {
        let inst = figure1_instance();
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.spec.num_edge(), 1);
        assert_eq!(inst.spec.num_cloud(), 1);
        // J2 min time is 8 (cloud), J6 min time is 1 (edge).
        assert_eq!(inst.job(JobId(1)).min_time(&inst.spec), 8.0);
        assert_eq!(inst.job(JobId(5)).min_time(&inst.spec), 1.0);
        assert_eq!(inst.delta(), 8.0);
    }

    #[test]
    fn origin_out_of_range_rejected() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let jobs = vec![Job::new(EdgeId(3), 0.0, 1.0, 0.0, 0.0)];
        assert_eq!(
            Instance::new(spec, jobs),
            Err(InstanceError::OriginOutOfRange { job: 0, origin: 3 })
        );
    }

    #[test]
    fn text_roundtrip() {
        let inst = figure1_instance();
        let text = inst.to_text();
        let back = Instance::from_text(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn text_roundtrip_with_windows() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build()
            .with_cloud_unavailability(
                CloudId(1),
                &[Interval::from_secs(1.0, 2.0), Interval::from_secs(4.0, 6.0)],
            );
        let jobs = vec![Job::new(EdgeId(0), 0.25, 1.5, 0.125, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let back = Instance::from_text(&inst.to_text()).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn tiered_text_roundtrip() {
        let inst = Instance::builder()
            .edges([0.5, 1.0])
            .tier(1.0, 1.25)
            .clouds([1.0, 2.0])
            .tier(2.5, 3.0)
            .cloud(4.0)
            .unavailability(CloudId(2), Interval::from_secs(1.0, 2.0))
            .job(0, 0.0, 4.0, 2.0, 1.0)
            .job(1, 0.5, 1.0, 0.25, 0.0)
            .build();
        let text = inst.to_text();
        assert!(text.starts_with("# mmsec-instance v2\n"), "{text}");
        assert!(text.contains("hop 1 1.25\n"), "{text}");
        assert!(text.contains("cloud 4 2\n"), "{text}");
        let back = Instance::from_text(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn flat_instances_keep_emitting_v1() {
        let inst = figure1_instance();
        assert!(inst.to_text().starts_with("# mmsec-instance v1\n"));
    }

    #[test]
    fn v2_cloud_tier_defaults_to_deepest() {
        let text = "edge 1\nhop 1 1\nhop 2 2\ncloud 1\ncloud 1 1\njob 0 0 1 0 0\n";
        let inst = Instance::from_text(text).unwrap();
        let t = inst.spec.tier_topology().unwrap();
        assert_eq!(t.tier_of(CloudId(0)), 2);
        assert_eq!(t.tier_of(CloudId(1)), 1);
    }

    #[test]
    fn tier_without_hops_is_rejected() {
        let err = Instance::from_text("edge 1\ncloud 1 1\n").unwrap_err();
        assert!(
            matches!(err, InstanceError::Parse { line: 2, ref message }
                if message.contains("no hop records")),
            "{err}"
        );
    }

    #[test]
    fn builder_validates_like_instance_new() {
        let err = Instance::builder()
            .edge(1.0)
            .cloud(1.0)
            .job(3, 0.0, 1.0, 0.0, 0.0)
            .try_build()
            .unwrap_err();
        assert_eq!(err, InstanceError::OriginOutOfRange { job: 0, origin: 3 });
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = Instance::from_text("edge 1\nbogus 3\n").unwrap_err();
        assert!(matches!(err, InstanceError::Parse { line: 2, .. }));
        let err = Instance::from_text("edge 1\ncloud 1\njob 0 0\n").unwrap_err();
        assert!(matches!(err, InstanceError::Parse { line: 3, .. }));
        let err = Instance::from_text("edge 1\njob 0 0 1 abc 0\n").unwrap_err();
        assert!(matches!(err, InstanceError::Parse { line: 2, .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nedge 1 # the only edge\ncloud 1\n  \njob 0 0 1 0 0\n";
        let inst = Instance::from_text(text).unwrap();
        assert_eq!(inst.num_jobs(), 1);
    }

    #[test]
    fn delta_on_irregular_jobs() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        assert_eq!(inst.delta(), 10.0);
    }

    #[test]
    fn fmt_f64_roundtrips_oddballs() {
        for x in [1.0 / 3.0, 6.0 / 37.0, 0.1, 95.0, 1e-9] {
            assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
        }
    }
}
