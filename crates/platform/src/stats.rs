//! Schedule statistics beyond the stretch: resource utilization, per-job
//! time breakdown, and communication/computation overlap — the quantities
//! one inspects to understand *why* a policy achieved its stretch.

use crate::activity::Target;
use crate::instance::Instance;
use crate::resource::{ResourceId, ResourceIndex, ResourceMap};
use crate::schedule::Schedule;
use crate::validate; // reuse of the per-resource usage collection
use mmsec_sim::Time;

/// Aggregate utilization and waiting statistics of a schedule.
#[derive(Clone, Debug)]
pub struct ScheduleStats {
    /// Makespan (end of the last activity, abandoned work included).
    pub horizon: f64,
    /// Busy time per resource (final + abandoned activity).
    pub busy: ResourceMap<f64>,
    /// Utilization per resource (busy / horizon).
    pub utilization: ResourceMap<f64>,
    /// Mean utilization over edge CPUs.
    pub mean_edge_cpu_utilization: f64,
    /// Mean utilization over cloud CPUs.
    pub mean_cloud_cpu_utilization: f64,
    /// Per job: response time minus its own total activity time — the
    /// time spent *waiting* (for resources, or between phases).
    pub wait_time: Vec<f64>,
    /// Total time lost to abandoned (re-executed) attempts.
    pub wasted: f64,
    /// Fraction of jobs delegated to the cloud.
    pub offload_ratio: f64,
}

/// Computes the statistics; requires a finished schedule.
pub fn schedule_stats(instance: &Instance, schedule: &Schedule) -> ScheduleStats {
    let spec = &instance.spec;
    let index = ResourceIndex::new(spec);
    let mut busy = ResourceMap::new(spec, 0.0f64);

    let mut horizon: f64 = 0.0;
    for usage in validate_usage(instance, schedule) {
        let (resource, intervals) = usage;
        let total: f64 = intervals.iter().map(|iv| iv.length().seconds()).sum();
        busy[resource] = total;
        for iv in &intervals {
            horizon = horizon.max(iv.end().seconds());
        }
    }
    let horizon = horizon.max(f64::MIN_POSITIVE);

    let mut utilization = ResourceMap::new(spec, 0.0f64);
    for i in 0..index.count() {
        let r = index.resource(i);
        utilization[r] = busy[r] / horizon;
    }

    let mean = |resources: Vec<ResourceId>| -> f64 {
        if resources.is_empty() {
            0.0
        } else {
            resources.iter().map(|&r| utilization[r]).sum::<f64>() / resources.len() as f64
        }
    };
    let mean_edge = mean(spec.edges().map(ResourceId::EdgeCpu).collect());
    let mean_cloud = mean(spec.clouds().map(ResourceId::CloudCpu).collect());

    let mut wait_time = Vec::with_capacity(instance.num_jobs());
    let mut offloaded = 0usize;
    for (id, job) in instance.iter_jobs() {
        let active = schedule.exec[id.0].total_length().seconds()
            + schedule.up[id.0].total_length().seconds()
            + schedule.dn[id.0].total_length().seconds();
        let response = schedule.completion[id.0]
            .map(|c: Time| (c - job.release).seconds())
            .unwrap_or(0.0);
        wait_time.push((response - active).max(0.0));
        if matches!(schedule.alloc[id.0], Some(Target::Cloud(_))) {
            offloaded += 1;
        }
    }

    ScheduleStats {
        horizon,
        busy,
        utilization,
        mean_edge_cpu_utilization: mean_edge,
        mean_cloud_cpu_utilization: mean_cloud,
        wait_time,
        wasted: schedule.wasted_time().seconds(),
        offload_ratio: if instance.num_jobs() == 0 {
            0.0
        } else {
            offloaded as f64 / instance.num_jobs() as f64
        },
    }
}

/// Per-resource interval usage (final + abandoned), sorted by resource
/// index. Thin wrapper over the validator's internal collection logic so
/// the two never diverge.
fn validate_usage(
    instance: &Instance,
    schedule: &Schedule,
) -> Vec<(ResourceId, Vec<mmsec_sim::Interval>)> {
    let index = ResourceIndex::new(&instance.spec);
    validate::resource_usage(instance, schedule)
        .into_iter()
        .enumerate()
        .map(|(i, uses)| {
            (
                index.resource(i),
                uses.into_iter().map(|(iv, _)| iv).collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Phase;
    use crate::job::{Job, JobId};
    use crate::schedule::TraceBuilder;
    use crate::spec::{CloudId, EdgeId, PlatformSpec};
    use mmsec_sim::Interval;

    fn build() -> (Instance, Schedule) {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0), // edge: 4 seconds
            Job::new(EdgeId(0), 0.0, 3.0, 1.0, 1.0), // cloud: 1+3+1
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut tb = TraceBuilder::new(2);
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 4.0),
        );
        let c = Target::Cloud(CloudId(0));
        tb.record(JobId(1), Phase::Uplink, c, Interval::from_secs(0.0, 1.0));
        tb.record(JobId(1), Phase::Compute, c, Interval::from_secs(1.0, 4.0));
        tb.record(JobId(1), Phase::Downlink, c, Interval::from_secs(5.0, 6.0));
        tb.complete(JobId(0), mmsec_sim::Time::new(4.0));
        tb.complete(JobId(1), mmsec_sim::Time::new(6.0));
        (inst, tb.finish())
    }

    #[test]
    fn utilization_and_horizon() {
        let (inst, sched) = build();
        let stats = schedule_stats(&inst, &sched);
        assert_eq!(stats.horizon, 6.0);
        assert!((stats.busy[ResourceId::EdgeCpu(EdgeId(0))] - 4.0).abs() < 1e-12);
        assert!((stats.busy[ResourceId::CloudCpu(CloudId(0))] - 3.0).abs() < 1e-12);
        assert!((stats.utilization[ResourceId::EdgeCpu(EdgeId(0))] - 4.0 / 6.0).abs() < 1e-12);
        assert!((stats.mean_edge_cpu_utilization - 4.0 / 6.0).abs() < 1e-12);
        assert!((stats.mean_cloud_cpu_utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wait_times_and_offload() {
        let (inst, sched) = build();
        let stats = schedule_stats(&inst, &sched);
        // Job 0: response 4, active 4 → wait 0.
        assert!(stats.wait_time[0].abs() < 1e-12);
        // Job 1: response 6, active 5 (idle gap [4,5) before downlink).
        assert!((stats.wait_time[1] - 1.0).abs() < 1e-12);
        assert!((stats.offload_ratio - 0.5).abs() < 1e-12);
        assert_eq!(stats.wasted, 0.0);
    }

    #[test]
    fn engine_output_feeds_stats() {
        use crate::engine::{OnlineScheduler, Simulation};
        use crate::view::SimView;
        use crate::DirectiveBuffer;
        struct EdgeFifo;
        impl OnlineScheduler for EdgeFifo {
            fn name(&self) -> String {
                "f".into()
            }
            fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
                for j in view.pending_jobs() {
                    out.push(j, Target::Edge);
                }
            }
        }
        let inst = crate::instance::figure1_instance();
        let out = Simulation::of(&inst).policy(&mut EdgeFifo).run().unwrap();
        let stats = schedule_stats(&inst, &out.schedule);
        assert!(stats.horizon > 0.0);
        assert_eq!(stats.offload_ratio, 0.0);
        // The single edge CPU does all the work.
        assert!(stats.mean_edge_cpu_utilization > 0.5);
        assert_eq!(stats.mean_cloud_cpu_utilization, 0.0);
    }
}
