//! The schedule produced by a simulation run (paper §III-B).
//!
//! A schedule consists of the allocation `alloc(i)`, the disjoint
//! execution intervals `E_i`, the uplink intervals `U_i(o_i, alloc(i))`,
//! and the downlink intervals `D_i(alloc(i), o_i)` of each job, plus the
//! completion times. Activity spent in attempts that were abandoned by a
//! re-execution is kept separately: it occupies resources (and the
//! validity checker accounts for that) but contributes nothing to the
//! final execution of the job.

use crate::activity::{Phase, Target};
use crate::job::JobId;
use mmsec_sim::{Interval, IntervalSet, Time};

/// One contiguous stretch of activity of a job on fixed resources.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// The job.
    pub job: JobId,
    /// Phase being advanced.
    pub phase: Phase,
    /// Target the attempt was committed to.
    pub target: Target,
    /// Time interval of the activity.
    pub interval: Interval,
}

/// Full record of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// Final allocation per job (`Some` once the job was placed).
    pub alloc: Vec<Option<Target>>,
    /// Execution intervals `E_i` of the final (successful) attempt.
    pub exec: Vec<IntervalSet>,
    /// Uplink intervals `U_i` of the final attempt (empty for edge jobs).
    pub up: Vec<IntervalSet>,
    /// Downlink intervals `D_i` of the final attempt.
    pub dn: Vec<IntervalSet>,
    /// Completion time `C_i` per job.
    pub completion: Vec<Option<Time>>,
    /// Segments of abandoned attempts (work lost to re-execution).
    pub abandoned: Vec<Segment>,
    /// Number of restarts per job.
    pub restarts: Vec<u32>,
}

impl Schedule {
    /// Number of jobs covered.
    pub fn num_jobs(&self) -> usize {
        self.alloc.len()
    }

    /// Latest completion time (None when no job completed).
    pub fn makespan(&self) -> Option<Time> {
        self.completion.iter().flatten().copied().max()
    }

    /// Total time lost to abandoned attempts.
    pub fn wasted_time(&self) -> Time {
        self.abandoned
            .iter()
            .fold(Time::ZERO, |acc, s| acc + s.interval.length())
    }

    /// True when every job completed.
    pub fn all_finished(&self) -> bool {
        self.completion.iter().all(|c| c.is_some())
    }
}

/// Incrementally builds a [`Schedule`] as the engine advances.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    current: Vec<Vec<Segment>>,
    abandoned: Vec<Segment>,
    alloc: Vec<Option<Target>>,
    completion: Vec<Option<Time>>,
    restarts: Vec<u32>,
}

impl TraceBuilder {
    /// Creates a builder for `n` jobs.
    pub fn new(n: usize) -> Self {
        TraceBuilder {
            current: vec![Vec::new(); n],
            abandoned: Vec::new(),
            alloc: vec![None; n],
            completion: vec![None; n],
            restarts: vec![0; n],
        }
    }

    /// Extends the builder by `extra` fresh jobs (streaming sessions
    /// admit jobs after construction).
    pub fn grow(&mut self, extra: usize) {
        let n = self.current.len() + extra;
        self.current.resize_with(n, Vec::new);
        self.alloc.resize(n, None);
        self.completion.resize(n, None);
        self.restarts.resize(n, 0);
    }

    /// Records activity of `job` in `interval`; merges with the previous
    /// segment when contiguous and of the same phase/target.
    pub fn record(&mut self, job: JobId, phase: Phase, target: Target, interval: Interval) {
        if interval.is_empty() {
            return;
        }
        self.alloc[job.0] = Some(target);
        let segs = &mut self.current[job.0];
        if let Some(last) = segs.last_mut() {
            // Exact-equality contiguity: the engine reuses the same float
            // for adjacent window boundaries. A tolerance here would merge
            // across genuine micro-gaps in which another job held the
            // resource, fabricating overlaps.
            if last.phase == phase
                && last.target == target
                && last.interval.end() == interval.start()
            {
                last.interval = Interval::new(last.interval.start(), interval.end());
                return;
            }
        }
        segs.push(Segment {
            job,
            phase,
            target,
            interval,
        });
    }

    /// Marks the in-flight attempt of `job` as abandoned (re-execution).
    pub fn abandon(&mut self, job: JobId) {
        self.restarts[job.0] += 1;
        self.abandoned.append(&mut self.current[job.0]);
        self.alloc[job.0] = None;
    }

    /// Marks `job` complete at `t`.
    pub fn complete(&mut self, job: JobId, t: Time) {
        debug_assert!(self.completion[job.0].is_none(), "{job} completed twice");
        self.completion[job.0] = Some(t);
    }

    /// Finalizes the schedule.
    pub fn finish(self) -> Schedule {
        let n = self.current.len();
        let mut exec = vec![IntervalSet::new(); n];
        let mut up = vec![IntervalSet::new(); n];
        let mut dn = vec![IntervalSet::new(); n];
        for segs in &self.current {
            for s in segs {
                let set = match s.phase {
                    Phase::Uplink => &mut up[s.job.0],
                    Phase::Compute => &mut exec[s.job.0],
                    Phase::Downlink => &mut dn[s.job.0],
                };
                set.insert(s.interval)
                    .expect("engine produced overlapping intervals for one job");
            }
        }
        Schedule {
            alloc: self.alloc,
            exec,
            up,
            dn,
            completion: self.completion,
            abandoned: self.abandoned,
            restarts: self.restarts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CloudId;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::from_secs(a, b)
    }

    #[test]
    fn records_and_merges_contiguous_segments() {
        let mut tb = TraceBuilder::new(1);
        let tgt = Target::Cloud(CloudId(0));
        tb.record(JobId(0), Phase::Uplink, tgt, iv(0.0, 1.0));
        tb.record(JobId(0), Phase::Uplink, tgt, iv(1.0, 2.0));
        tb.record(JobId(0), Phase::Compute, tgt, iv(2.0, 3.0));
        tb.record(JobId(0), Phase::Compute, tgt, iv(5.0, 6.0)); // gap: no merge
        tb.complete(JobId(0), Time::new(6.0));
        let s = tb.finish();
        assert_eq!(s.up[0].len(), 1);
        assert_eq!(s.up[0].total_length(), Time::new(2.0));
        assert_eq!(s.exec[0].len(), 2);
        assert_eq!(s.completion[0], Some(Time::new(6.0)));
        assert_eq!(s.alloc[0], Some(tgt));
        assert!(s.all_finished());
        assert_eq!(s.makespan(), Some(Time::new(6.0)));
    }

    #[test]
    fn abandon_moves_segments() {
        let mut tb = TraceBuilder::new(1);
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 2.0));
        tb.abandon(JobId(0));
        tb.record(
            JobId(0),
            Phase::Uplink,
            Target::Cloud(CloudId(0)),
            iv(2.0, 3.0),
        );
        tb.complete(JobId(0), Time::new(3.0));
        let s = tb.finish();
        assert_eq!(s.restarts[0], 1);
        assert_eq!(s.abandoned.len(), 1);
        assert_eq!(s.abandoned[0].phase, Phase::Compute);
        assert!(s.exec[0].is_empty());
        assert_eq!(s.up[0].len(), 1);
        assert_eq!(s.wasted_time(), Time::new(2.0));
        assert_eq!(s.alloc[0], Some(Target::Cloud(CloudId(0))));
    }

    #[test]
    fn empty_intervals_ignored() {
        let mut tb = TraceBuilder::new(1);
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(1.0, 1.0));
        let s = tb.finish();
        assert!(s.exec[0].is_empty());
        assert_eq!(s.alloc[0], None);
        assert!(!s.all_finished());
        assert_eq!(s.makespan(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut tb = TraceBuilder::new(1);
        tb.complete(JobId(0), Time::new(1.0));
        tb.complete(JobId(0), Time::new(2.0));
    }
}
