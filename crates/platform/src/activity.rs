//! Placement targets, phases, and scheduler directives.

use crate::job::Job;
use crate::resource::{ResourceId, ResourcePair};
use crate::spec::{CloudId, PlatformSpec};
use std::fmt;

/// Where a job is (to be) executed: `alloc(i)` in the paper — 0 for the
/// local edge processor, `k` for cloud processor `k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Target {
    /// Execute locally on the origin edge unit.
    Edge,
    /// Delegate to cloud processor `k`.
    Cloud(CloudId),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Edge => write!(f, "edge"),
            Target::Cloud(k) => write!(f, "cloud:{}", k.0),
        }
    }
}

/// The phase a job is currently in on its committed target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Uplink communication (cloud targets only).
    Uplink,
    /// Computation (edge or cloud).
    Compute,
    /// Downlink communication (cloud targets only).
    Downlink,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Uplink => write!(f, "up"),
            Phase::Compute => write!(f, "exec"),
            Phase::Downlink => write!(f, "down"),
        }
    }
}

impl Phase {
    /// Resources occupied while running phase `self` of `job` on `target`.
    pub fn resources(self, job: &Job, target: Target) -> ResourcePair {
        match (target, self) {
            (Target::Edge, Phase::Compute) => ResourcePair::single(ResourceId::EdgeCpu(job.origin)),
            (Target::Edge, _) => unreachable!("edge jobs have no communication phases"),
            (Target::Cloud(k), Phase::Uplink) => {
                ResourcePair::pair(ResourceId::EdgeOut(job.origin), ResourceId::CloudIn(k))
            }
            (Target::Cloud(k), Phase::Compute) => ResourcePair::single(ResourceId::CloudCpu(k)),
            (Target::Cloud(k), Phase::Downlink) => {
                ResourcePair::pair(ResourceId::CloudOut(k), ResourceId::EdgeIn(job.origin))
            }
        }
    }

    /// Progress rate of the phase on `target`: work units per second for
    /// computations; for communications, the volume completed per second
    /// along the route — exactly 1 on the flat platform, `1 / path` on a
    /// continuum platform (so a transfer's duration is its volume times
    /// the multi-hop path factor).
    pub fn rate(self, job: &Job, target: Target, spec: &PlatformSpec) -> f64 {
        match (target, self) {
            (Target::Edge, Phase::Compute) => spec.edge_speed(job.origin),
            (Target::Cloud(k), Phase::Compute) => spec.cloud_speed(k),
            (Target::Cloud(k), Phase::Uplink) => spec.comm_rate_up(k),
            (Target::Cloud(k), Phase::Downlink) => spec.comm_rate_dn(k),
            (Target::Edge, Phase::Uplink) | (Target::Edge, Phase::Downlink) => 1.0,
        }
    }
}

/// One entry of the prioritized list a scheduler returns at each event:
/// "job `job` should (continue to) run on `target`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Directive {
    /// The job concerned.
    pub job: crate::job::JobId,
    /// Where it should run.
    pub target: Target,
}

impl Directive {
    /// Convenience constructor.
    pub fn new(job: crate::job::JobId, target: Target) -> Self {
        Directive { job, target }
    }
}

/// Reusable, engine-owned buffer a scheduler fills at each decision.
///
/// The engine allocates one buffer per run, clears it before every
/// [`crate::engine::OnlineScheduler::decide`] call, and hands the policy a
/// `&mut` — so the decide hot path performs no per-event allocation for
/// the directive list (the backing `Vec` reaches its high-water capacity
/// after a few events and is reused from then on).
///
/// Directives are prioritized in push order, exactly like the `Vec` the
/// old contract returned.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DirectiveBuffer {
    items: Vec<Directive>,
}

impl DirectiveBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        DirectiveBuffer::default()
    }

    /// Drops every directive, keeping the allocation.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Appends "job should (continue to) run on target" with the next
    /// lower priority.
    pub fn push(&mut self, job: crate::job::JobId, target: Target) {
        self.items.push(Directive::new(job, target));
    }

    /// Appends an already-built directive.
    pub fn push_directive(&mut self, d: Directive) {
        self.items.push(d);
    }

    /// Number of buffered directives.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no directive is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The prioritized directive list.
    pub fn as_slice(&self) -> &[Directive] {
        &self.items
    }

    /// Mutable access (the engine rewrites targets of refused retargets).
    pub fn as_mut_slice(&mut self) -> &mut [Directive] {
        &mut self.items
    }

    /// Keeps only the directives satisfying `keep`, preserving order.
    pub fn retain(&mut self, keep: impl FnMut(&Directive) -> bool) {
        self.items.retain(keep);
    }

    /// Iterates over the buffered directives in priority order.
    pub fn iter(&self) -> impl Iterator<Item = &Directive> {
        self.items.iter()
    }
}

impl<'a> IntoIterator for &'a DirectiveBuffer {
    type Item = &'a Directive;
    type IntoIter = std::slice::Iter<'a, Directive>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EdgeId;

    fn job() -> Job {
        Job::new(EdgeId(1), 0.0, 2.0, 1.0, 0.5)
    }

    fn spec() -> PlatformSpec {
        PlatformSpec::builder()
            .edges(vec![0.5, 0.25])
            .clouds(vec![1.0, 2.0])
            .build()
    }

    #[test]
    fn resources_per_phase() {
        let j = job();
        let up = Phase::Uplink.resources(&j, Target::Cloud(CloudId(1)));
        assert_eq!(up.primary, ResourceId::EdgeOut(EdgeId(1)));
        assert_eq!(up.secondary, Some(ResourceId::CloudIn(CloudId(1))));

        let ex = Phase::Compute.resources(&j, Target::Cloud(CloudId(0)));
        assert_eq!(ex.primary, ResourceId::CloudCpu(CloudId(0)));
        assert_eq!(ex.secondary, None);

        let dn = Phase::Downlink.resources(&j, Target::Cloud(CloudId(0)));
        assert_eq!(dn.primary, ResourceId::CloudOut(CloudId(0)));
        assert_eq!(dn.secondary, Some(ResourceId::EdgeIn(EdgeId(1))));

        let local = Phase::Compute.resources(&j, Target::Edge);
        assert_eq!(local.primary, ResourceId::EdgeCpu(EdgeId(1)));
    }

    #[test]
    fn rates() {
        let j = job();
        let s = spec();
        assert_eq!(Phase::Compute.rate(&j, Target::Edge, &s), 0.25);
        assert_eq!(Phase::Compute.rate(&j, Target::Cloud(CloudId(1)), &s), 2.0);
        assert_eq!(Phase::Uplink.rate(&j, Target::Cloud(CloudId(0)), &s), 1.0);
        assert_eq!(Phase::Downlink.rate(&j, Target::Cloud(CloudId(0)), &s), 1.0);
    }

    #[test]
    #[should_panic(expected = "no communication phases")]
    fn edge_uplink_is_invalid() {
        let _ = Phase::Uplink.resources(&job(), Target::Edge);
    }

    #[test]
    fn target_display() {
        assert_eq!(Target::Edge.to_string(), "edge");
        assert_eq!(Target::Cloud(CloudId(3)).to_string(), "cloud:3");
    }
}
