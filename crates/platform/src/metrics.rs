//! Stretch and response-time metrics (paper §III-A).

use crate::instance::Instance;
use crate::job::JobId;
use crate::schedule::Schedule;
use mmsec_sim::Time;

/// Per-job and aggregate stretch report of a finished schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct StretchReport {
    /// Per-job stretch `S_i = (C_i − r_i) / min(t^e_i, t^c_i)`.
    pub stretches: Vec<f64>,
    /// Per-job response (flow) time `C_i − r_i`.
    pub responses: Vec<f64>,
    /// `max_i S_i` — the paper's objective.
    pub max_stretch: f64,
    /// Mean stretch (the alternative fairness metric discussed in §I).
    pub mean_stretch: f64,
    /// Maximum response time.
    pub max_response: f64,
    /// Job achieving the maximum stretch.
    pub argmax: Option<JobId>,
}

impl StretchReport {
    /// Computes the report; panics if some job has no completion time
    /// (validate first, or use [`try_report`]).
    pub fn new(instance: &Instance, schedule: &Schedule) -> Self {
        try_report(instance, schedule).expect("schedule has unfinished jobs")
    }
}

/// Computes the stretch report, or `None` when a job never completed.
pub fn try_report(instance: &Instance, schedule: &Schedule) -> Option<StretchReport> {
    let n = instance.num_jobs();
    let mut stretches = Vec::with_capacity(n);
    let mut responses = Vec::with_capacity(n);
    let mut max_stretch = 0.0f64;
    let mut max_response = 0.0f64;
    let mut argmax = None;
    for (id, job) in instance.iter_jobs() {
        let c: Time = schedule.completion[id.0]?;
        let response = (c - job.release).seconds();
        let stretch = response / job.min_time(&instance.spec);
        if stretch > max_stretch {
            max_stretch = stretch;
            argmax = Some(id);
        }
        max_response = max_response.max(response);
        stretches.push(stretch);
        responses.push(response);
    }
    let mean_stretch = if n == 0 {
        0.0
    } else {
        stretches.iter().sum::<f64>() / n as f64
    };
    Some(StretchReport {
        stretches,
        responses,
        max_stretch,
        mean_stretch,
        max_response,
        argmax,
    })
}

/// Maximum stretch of a finished schedule (shorthand).
pub fn max_stretch(instance: &Instance, schedule: &Schedule) -> f64 {
    StretchReport::new(instance, schedule).max_stretch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Phase, Target};
    use crate::job::Job;
    use crate::schedule::TraceBuilder;
    use crate::spec::{EdgeId, PlatformSpec};
    use mmsec_sim::Interval;

    /// Two jobs released together on one processor: the paper's intro
    /// example (1-hour and 10-hour jobs; shortest-first gives 1.1).
    #[test]
    fn intro_example_stretches() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();

        // Short job first.
        let mut tb = TraceBuilder::new(2);
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 1.0),
        );
        tb.record(
            JobId(1),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(1.0, 11.0),
        );
        tb.complete(JobId(0), mmsec_sim::Time::new(1.0));
        tb.complete(JobId(1), mmsec_sim::Time::new(11.0));
        let report = StretchReport::new(&inst, &tb.finish());
        assert!((report.max_stretch - 1.1).abs() < 1e-12);
        assert_eq!(report.argmax, Some(JobId(1)));
        assert_eq!(report.stretches, vec![1.0, 1.1]);
        assert!((report.mean_stretch - 1.05).abs() < 1e-12);
        assert_eq!(report.max_response, 11.0);

        // Long job first: stretch 11 for the short one.
        let mut tb = TraceBuilder::new(2);
        tb.record(
            JobId(1),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 10.0),
        );
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(10.0, 11.0),
        );
        tb.complete(JobId(0), mmsec_sim::Time::new(11.0));
        tb.complete(JobId(1), mmsec_sim::Time::new(10.0));
        let report = StretchReport::new(&inst, &tb.finish());
        assert!((report.max_stretch - 11.0).abs() < 1e-12);
        assert_eq!(report.argmax, Some(JobId(0)));
    }

    #[test]
    fn unfinished_schedule_yields_none() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)]).unwrap();
        let tb = TraceBuilder::new(1);
        assert!(try_report(&inst, &tb.finish()).is_none());
    }

    /// The degenerate zero-job instance is still a valid input: the
    /// report exists, every aggregate is zero, and there is no argmax.
    #[test]
    fn empty_instance_reports_zeros() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(spec, vec![]).unwrap();
        let report =
            try_report(&inst, &TraceBuilder::new(0).finish()).expect("empty instance must report");
        assert!(report.stretches.is_empty());
        assert!(report.responses.is_empty());
        assert_eq!(report.max_stretch, 0.0);
        assert_eq!(report.mean_stretch, 0.0);
        assert_eq!(report.max_response, 0.0);
        assert_eq!(report.argmax, None);
    }

    /// One unfinished job poisons the whole report even when every other
    /// job completed — a partial report would silently understate the
    /// max stretch.
    #[test]
    fn single_unfinished_job_among_finished_yields_none() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut tb = TraceBuilder::new(2);
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 1.0),
        );
        tb.complete(JobId(0), mmsec_sim::Time::new(1.0));
        // JobId(1) never completes.
        assert!(try_report(&inst, &tb.finish()).is_none());
    }

    #[test]
    fn stretch_denominator_uses_best_resource() {
        // Job prefers cloud (min time 4) but is executed on the edge in 6:
        // stretch must be 6/4, not 1.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0 / 3.0])
            .cloud_pool(1)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0)]).unwrap();
        let mut tb = TraceBuilder::new(1);
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 6.0),
        );
        tb.complete(JobId(0), mmsec_sim::Time::new(6.0));
        let r = StretchReport::new(&inst, &tb.finish());
        assert!((r.max_stretch - 1.5).abs() < 1e-12);
    }
}
