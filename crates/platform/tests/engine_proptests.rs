//! Property tests: whatever an (arbitrarily misbehaved) policy does, the
//! engine must only ever produce schedules satisfying every §III-B
//! constraint.

use mmsec_platform::{
    validate_with, CloudId, DirectiveBuffer, EdgeId, EngineOptions, Instance, Job, JobId,
    OnlineScheduler, PendingSet, PlatformSpec, SimView, Simulation, Target, ValidateOptions,
};
use mmsec_sim::seed::SplitMix64;
use proptest::prelude::*;

/// A chaos-monkey policy: pseudo-random priority order, pseudo-random
/// targets, occasional retargets (triggering re-executions), occasional
/// omissions (pausing jobs).
struct ChaosPolicy {
    rng: SplitMix64,
    num_cloud: usize,
    retarget_prob: f64,
    omit_prob: f64,
}

impl OnlineScheduler for ChaosPolicy {
    fn name(&self) -> String {
        "chaos".into()
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        let mut jobs: Vec<_> = view.pending_jobs().collect();
        // Fisher-Yates shuffle with the deterministic stream.
        for i in (1..jobs.len()).rev() {
            let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
            jobs.swap(i, j);
        }
        for id in jobs {
            if self.rng.next_f64() < self.omit_prob {
                continue;
            }
            let target = match view.jobs.committed[id.0] {
                Some(t) if self.rng.next_f64() >= self.retarget_prob => t,
                _ => self.random_target(),
            };
            out.push(id, target);
        }
    }
}

impl ChaosPolicy {
    fn random_target(&mut self) -> Target {
        if self.num_cloud == 0 || self.rng.next_f64() < 0.4 {
            Target::Edge
        } else {
            Target::Cloud(CloudId((self.rng.next_u64() as usize) % self.num_cloud))
        }
    }
}

/// FIFO policy that sends everything to the edge — guaranteed to finish.
struct EdgeFifo;
impl OnlineScheduler for EdgeFifo {
    fn name(&self) -> String {
        "edge-fifo".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        for j in view.pending_jobs() {
            out.push(j, Target::Edge);
        }
    }
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..4, // edge units
        0usize..3, // cloud processors
        prop::collection::vec(
            (
                0.0f64..20.0,
                0.1f64..8.0,
                0.0f64..6.0,
                0.0f64..6.0,
                0usize..4,
            ),
            1..10,
        ),
        prop::collection::vec(0.05f64..1.0, 1..4), // edge speeds
    )
        .prop_map(|(ne, nc, raw_jobs, speeds)| {
            let mut edge_speeds = speeds;
            edge_speeds.resize(ne, 0.5);
            let spec = PlatformSpec::builder()
                .edges(edge_speeds)
                .cloud_pool(nc)
                .build();
            let jobs = raw_jobs
                .into_iter()
                .map(|(r, w, up, dn, o)| Job::new(EdgeId(o % ne), r, w, up, dn))
                .collect();
            Instance::new(spec, jobs).expect("generated instance valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chaos policy with bounded retargeting: if the run finishes, the
    /// schedule is valid. (Unbounded retargeting can livelock, which the
    /// engine reports as an error rather than producing garbage.)
    #[test]
    fn chaos_runs_always_validate(inst in arb_instance(), seed in any::<u64>()) {
        let mut policy = ChaosPolicy {
            rng: SplitMix64::new(seed),
            num_cloud: inst.spec.num_cloud(),
            retarget_prob: 0.05,
            omit_prob: 0.2,
        };
        match Simulation::of(&inst).policy(&mut policy).run() {
            Ok(out) => {
                prop_assert!(out.schedule.all_finished());
                if let Err(violations) = mmsec_platform::validate(&inst, &out.schedule) {
                    return Err(TestCaseError::fail(format!("violations: {violations:?}")));
                }
                // Stretch is well-defined and ≥ 1 for every job.
                let report = mmsec_platform::StretchReport::new(&inst, &out.schedule);
                for (i, &s) in report.stretches.iter().enumerate() {
                    prop_assert!(s >= 1.0 - 1e-9, "job {i} has stretch {s} < 1");
                }
            }
            Err(e) => {
                // A chaotic policy may stall or livelock; both are
                // reported errors, never invalid schedules.
                let _ = e;
            }
        }
    }

    /// The deterministic edge-FIFO policy always completes with a valid
    /// schedule, no re-executions, and no communications.
    #[test]
    fn edge_fifo_always_completes(inst in arb_instance()) {
        let out = Simulation::of(&inst).policy(&mut EdgeFifo).run().unwrap();
        prop_assert!(out.schedule.all_finished());
        prop_assert_eq!(out.stats.restarts, 0);
        prop_assert!(mmsec_platform::validate(&inst, &out.schedule).is_ok());
        for i in 0..inst.num_jobs() {
            prop_assert!(out.schedule.up[i].is_empty());
            prop_assert!(out.schedule.dn[i].is_empty());
        }
    }

    /// Infinite-port runs complete and validate once port checks are
    /// disabled. (Note: per-job completions are NOT necessarily ≤ the
    /// strict one-port ones — removing contention shifts decision events
    /// and triggers classic list-scheduling anomalies, which is precisely
    /// why the ablation A2 is measured rather than assumed.)
    #[test]
    fn infinite_ports_runs_validate(inst in arb_instance(), seed in any::<u64>()) {
        prop_assume!(inst.spec.num_cloud() > 0);
        struct CloudFifo { k: usize }
        impl OnlineScheduler for CloudFifo {
            fn name(&self) -> String { "cloud-fifo".into() }
            fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
                for j in view.pending_jobs() {
                    out.push(j, Target::Cloud(CloudId(j.0 % self.k)));
                }
            }
        }
        let k = inst.spec.num_cloud();
        let _ = seed;
        let strict = Simulation::of(&inst).policy(&mut CloudFifo { k }).run().unwrap();
        let loose = Simulation::of(&inst).policy(&mut CloudFifo { k }).options(EngineOptions { infinite_ports: true, ..EngineOptions::default() }).run()
        .unwrap();
        let opts = ValidateOptions { check_ports: false, ..ValidateOptions::default() };
        prop_assert!(validate_with(&inst, &loose.schedule, opts).is_ok());
        prop_assert!(loose.schedule.all_finished());
        prop_assert!(strict.schedule.all_finished());
        prop_assert!(mmsec_platform::validate(&inst, &strict.schedule).is_ok());
    }

    /// The incrementally maintained [`PendingSet`] stays identical to a
    /// brute-force rescan of the job states after *every* event of an
    /// arbitrary release/completion sequence — the invariant the engine
    /// relies on when it swaps the per-event O(n) scan for incremental
    /// insert/remove.
    #[test]
    fn pending_set_matches_brute_force_rescan(inst in arb_instance(), seed in any::<u64>()) {
        use mmsec_platform::JobState;

        let n = inst.num_jobs();
        let mut rng = SplitMix64::new(seed);
        let mut states = vec![JobState::default(); n];
        let mut pending = PendingSet::new();

        // Drive an arbitrary-but-legal event sequence: each step either
        // releases an unreleased job or completes a pending one, mirroring
        // exactly the two transitions the engine performs (release fires →
        // insert; completion in step 7 → remove). 2n steps exhaust all
        // jobs' lifecycles.
        for _ in 0..2 * n {
            let releasable: Vec<JobId> = (0..n)
                .map(JobId)
                .filter(|id| !states[id.0].released)
                .collect();
            let completable: Vec<JobId> = (0..n)
                .map(JobId)
                .filter(|id| states[id.0].active())
                .collect();
            let release_step = !releasable.is_empty()
                && (completable.is_empty() || rng.next_u64() % 2 == 0);
            if release_step {
                let id = releasable[(rng.next_u64() as usize) % releasable.len()];
                states[id.0].released = true;
                pending.insert(inst.job(id).release, id);
            } else if !completable.is_empty() {
                let id = completable[(rng.next_u64() as usize) % completable.len()];
                states[id.0].finished = true;
                pending.remove(inst.job(id).release, id);
            }

            // The incremental set must equal the brute-force rescan…
            let rescan = PendingSet::from_states(&inst, &states);
            prop_assert_eq!(&pending, &rescan);
            // …and iterate in (release, id) order.
            let mut expected: Vec<(mmsec_sim::Time, JobId)> = (0..n)
                .map(JobId)
                .filter(|id| states[id.0].active())
                .map(|id| (inst.job(id).release, id))
                .collect();
            expected.sort();
            let got: Vec<JobId> = pending.iter().collect();
            let expected_ids: Vec<JobId> = expected.into_iter().map(|(_, id)| id).collect();
            prop_assert_eq!(got, expected_ids);
        }
        // Every lifecycle exhausted: nothing is pending.
        prop_assert!(pending.is_empty());
    }
}
