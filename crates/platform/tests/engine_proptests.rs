//! Property tests: whatever an (arbitrarily misbehaved) policy does, the
//! engine must only ever produce schedules satisfying every §III-B
//! constraint.

use mmsec_platform::{
    simulate_with, validate_with, CloudId, Directive, EdgeId, EngineOptions, Instance, Job,
    OnlineScheduler, PlatformSpec, SimView, Target, ValidateOptions,
};
use mmsec_sim::seed::SplitMix64;
use proptest::prelude::*;

/// A chaos-monkey policy: pseudo-random priority order, pseudo-random
/// targets, occasional retargets (triggering re-executions), occasional
/// omissions (pausing jobs).
struct ChaosPolicy {
    rng: SplitMix64,
    num_cloud: usize,
    retarget_prob: f64,
    omit_prob: f64,
}

impl OnlineScheduler for ChaosPolicy {
    fn name(&self) -> String {
        "chaos".into()
    }

    fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
        let mut jobs: Vec<_> = view.pending_jobs().collect();
        // Fisher-Yates shuffle with the deterministic stream.
        for i in (1..jobs.len()).rev() {
            let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
            jobs.swap(i, j);
        }
        let mut out = Vec::new();
        for id in jobs {
            if self.rng.next_f64() < self.omit_prob {
                continue;
            }
            let st = &view.jobs[id.0];
            let target = match st.committed {
                Some(t) if self.rng.next_f64() >= self.retarget_prob => t,
                _ => self.random_target(),
            };
            out.push(Directive::new(id, target));
        }
        out
    }
}

impl ChaosPolicy {
    fn random_target(&mut self) -> Target {
        if self.num_cloud == 0 || self.rng.next_f64() < 0.4 {
            Target::Edge
        } else {
            Target::Cloud(CloudId((self.rng.next_u64() as usize) % self.num_cloud))
        }
    }
}

/// FIFO policy that sends everything to the edge — guaranteed to finish.
struct EdgeFifo;
impl OnlineScheduler for EdgeFifo {
    fn name(&self) -> String {
        "edge-fifo".into()
    }
    fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
        view.pending_jobs()
            .map(|j| Directive::new(j, Target::Edge))
            .collect()
    }
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..4, // edge units
        0usize..3, // cloud processors
        prop::collection::vec(
            (
                0.0f64..20.0,
                0.1f64..8.0,
                0.0f64..6.0,
                0.0f64..6.0,
                0usize..4,
            ),
            1..10,
        ),
        prop::collection::vec(0.05f64..1.0, 1..4), // edge speeds
    )
        .prop_map(|(ne, nc, raw_jobs, speeds)| {
            let mut edge_speeds = speeds;
            edge_speeds.resize(ne, 0.5);
            let spec = PlatformSpec::homogeneous_cloud(edge_speeds, nc);
            let jobs = raw_jobs
                .into_iter()
                .map(|(r, w, up, dn, o)| Job::new(EdgeId(o % ne), r, w, up, dn))
                .collect();
            Instance::new(spec, jobs).expect("generated instance valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chaos policy with bounded retargeting: if the run finishes, the
    /// schedule is valid. (Unbounded retargeting can livelock, which the
    /// engine reports as an error rather than producing garbage.)
    #[test]
    fn chaos_runs_always_validate(inst in arb_instance(), seed in any::<u64>()) {
        let mut policy = ChaosPolicy {
            rng: SplitMix64::new(seed),
            num_cloud: inst.spec.num_cloud(),
            retarget_prob: 0.05,
            omit_prob: 0.2,
        };
        match simulate_with(&inst, &mut policy, EngineOptions::default()) {
            Ok(out) => {
                prop_assert!(out.schedule.all_finished());
                if let Err(violations) = mmsec_platform::validate(&inst, &out.schedule) {
                    return Err(TestCaseError::fail(format!("violations: {violations:?}")));
                }
                // Stretch is well-defined and ≥ 1 for every job.
                let report = mmsec_platform::StretchReport::new(&inst, &out.schedule);
                for (i, &s) in report.stretches.iter().enumerate() {
                    prop_assert!(s >= 1.0 - 1e-9, "job {i} has stretch {s} < 1");
                }
            }
            Err(e) => {
                // A chaotic policy may stall or livelock; both are
                // reported errors, never invalid schedules.
                let _ = e;
            }
        }
    }

    /// The deterministic edge-FIFO policy always completes with a valid
    /// schedule, no re-executions, and no communications.
    #[test]
    fn edge_fifo_always_completes(inst in arb_instance()) {
        let out = simulate_with(&inst, &mut EdgeFifo, EngineOptions::default()).unwrap();
        prop_assert!(out.schedule.all_finished());
        prop_assert_eq!(out.stats.restarts, 0);
        prop_assert!(mmsec_platform::validate(&inst, &out.schedule).is_ok());
        for i in 0..inst.num_jobs() {
            prop_assert!(out.schedule.up[i].is_empty());
            prop_assert!(out.schedule.dn[i].is_empty());
        }
    }

    /// Infinite-port runs complete and validate once port checks are
    /// disabled. (Note: per-job completions are NOT necessarily ≤ the
    /// strict one-port ones — removing contention shifts decision events
    /// and triggers classic list-scheduling anomalies, which is precisely
    /// why the ablation A2 is measured rather than assumed.)
    #[test]
    fn infinite_ports_runs_validate(inst in arb_instance(), seed in any::<u64>()) {
        prop_assume!(inst.spec.num_cloud() > 0);
        struct CloudFifo { k: usize }
        impl OnlineScheduler for CloudFifo {
            fn name(&self) -> String { "cloud-fifo".into() }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
                view.pending_jobs()
                    .map(|j| Directive::new(j, Target::Cloud(CloudId(j.0 % self.k))))
                    .collect()
            }
        }
        let k = inst.spec.num_cloud();
        let _ = seed;
        let strict = simulate_with(&inst, &mut CloudFifo { k }, EngineOptions::default()).unwrap();
        let loose = simulate_with(
            &inst,
            &mut CloudFifo { k },
            EngineOptions { infinite_ports: true, ..EngineOptions::default() },
        )
        .unwrap();
        let opts = ValidateOptions { check_ports: false, ..ValidateOptions::default() };
        prop_assert!(validate_with(&inst, &loose.schedule, opts).is_ok());
        prop_assert!(loose.schedule.all_finished());
        prop_assert!(strict.schedule.all_finished());
        prop_assert!(mmsec_platform::validate(&inst, &strict.schedule).is_ok());
    }
}
