//! Arrival processes for release dates.
//!
//! The paper draws release dates uniformly over `[0, R]` with
//! `R = Σw/(ℓ·Σs)` (see [`crate::load`]). As extensions we also support a
//! Poisson process with the same mean horizon — bursty arrivals are the
//! natural stress test for an online scheduler — and a *diurnal*
//! non-homogeneous Poisson process whose sinusoidal rate completes one
//! full day over the horizon. All three share the load parameterization
//! (expected job count `n` over `[0, R)`), so results are comparable.

use crate::load::max_release;
use mmsec_platform::PlatformSpec;
use rand::Rng;

/// How release dates are drawn.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ArrivalProcess {
    /// Independent uniforms over `[0, R)` — the paper's model.
    #[default]
    Uniform,
    /// Poisson process with rate `n/R` (exponential inter-arrival times),
    /// truncated at the horizon by wrap-around to keep the load equal.
    Poisson,
    /// Diurnal non-homogeneous Poisson process: rate
    /// `λ(t) = (n/R)·(1 + a·sin(2πt/R))` — one sinusoidal "day" over the
    /// horizon, sampled by Lewis–Shedler thinning against the peak rate.
    /// The sine integrates to zero over the full cycle, so the expected
    /// job count over `[0, R)` stays `n` for every amplitude.
    Nhpp {
        /// Relative peak-to-mean amplitude `a ∈ [0, 1)` (0 degenerates to
        /// [`ArrivalProcess::Poisson`]; near 1 the off-peak trough is
        /// almost silent).
        amplitude: f64,
    },
}

impl ArrivalProcess {
    /// The diurnal process at the default amplitude 0.8 — pronounced
    /// peak-vs-trough contrast while keeping the trough active.
    pub fn diurnal() -> ArrivalProcess {
        ArrivalProcess::Nhpp { amplitude: 0.8 }
    }
}

/// Draws one release date per work according to the chosen process, under
/// the paper's load model.
pub fn sample_arrivals<R: Rng + ?Sized>(
    process: ArrivalProcess,
    works: &[f64],
    spec: &PlatformSpec,
    load: f64,
    rng: &mut R,
) -> Vec<f64> {
    let r_max = max_release(works, spec, load);
    match process {
        ArrivalProcess::Uniform => works
            .iter()
            .map(|_| {
                if r_max > 0.0 {
                    rng.gen_range(0.0..r_max)
                } else {
                    0.0
                }
            })
            .collect(),
        ArrivalProcess::Poisson => {
            let n = works.len();
            if n == 0 || r_max <= 0.0 {
                return vec![0.0; n];
            }
            let rate = n as f64 / r_max;
            let mut t = 0.0;
            (0..n)
                .map(|_| {
                    // Exponential inter-arrival: −ln(U)/λ.
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    t += -u.ln() / rate;
                    // Wrap past the horizon so the expected number of jobs
                    // in [0, R] stays n (keeps the load comparable).
                    t % r_max
                })
                .collect()
        }
        ArrivalProcess::Nhpp { amplitude } => {
            assert!(
                (0.0..1.0).contains(&amplitude),
                "NHPP amplitude must be in [0, 1)"
            );
            let n = works.len();
            if n == 0 || r_max <= 0.0 {
                return vec![0.0; n];
            }
            let base = n as f64 / r_max;
            let peak = base * (1.0 + amplitude);
            let mut out = Vec::with_capacity(n);
            let mut t = 0.0;
            // Lewis–Shedler thinning: candidates from a homogeneous
            // process at the peak rate, each kept with probability
            // λ(t)/λ_peak. Candidate times wrap at the horizon (as the
            // Poisson arm does), and the modulating sine is evaluated on
            // the wrapped clock so the cycle phase stays consistent.
            while out.len() < n {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                t += -u.ln() / peak;
                let at = t % r_max;
                let lambda = base * (1.0 + amplitude * (std::f64::consts::TAU * at / r_max).sin());
                if rng.gen::<f64>() * peak < lambda {
                    out.push(at);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> PlatformSpec {
        PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build()
    }

    #[test]
    fn uniform_matches_load_module() {
        let works = vec![2.0; 50];
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let via_arrival = sample_arrivals(ArrivalProcess::Uniform, &works, &spec(), 0.5, &mut a);
        let via_load = crate::load::sample_releases(&works, &spec(), 0.5, &mut b);
        assert_eq!(via_arrival, via_load);
    }

    #[test]
    fn poisson_within_horizon_and_right_density() {
        let works = vec![1.0; 2000];
        let mut rng = StdRng::seed_from_u64(7);
        let r_max = max_release(&works, &spec(), 0.5);
        let arrivals = sample_arrivals(ArrivalProcess::Poisson, &works, &spec(), 0.5, &mut rng);
        assert!(arrivals.iter().all(|&r| (0.0..r_max).contains(&r)));
        // First half of the horizon should hold roughly half the jobs.
        let first_half = arrivals.iter().filter(|&&r| r < r_max / 2.0).count();
        assert!(
            (first_half as f64 / 2000.0 - 0.5).abs() < 0.06,
            "first-half share {first_half}"
        );
    }

    #[test]
    fn poisson_is_burstier_than_uniform() {
        // Variance of inter-arrival gaps (sorted): exponential gaps have
        // CV² ≈ 1, uniform order statistics the same asymptotically —
        // instead check maximum gap: Poisson wrap-around produces heavier
        // clumps; weak smoke check only: both processes produce n values.
        let works = vec![1.0; 100];
        let mut rng = StdRng::seed_from_u64(9);
        let p = sample_arrivals(ArrivalProcess::Poisson, &works, &spec(), 0.5, &mut rng);
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_arrivals(ArrivalProcess::Poisson, &[], &spec(), 0.5, &mut rng).is_empty());
        assert!(sample_arrivals(ArrivalProcess::diurnal(), &[], &spec(), 0.5, &mut rng).is_empty());
    }

    #[test]
    fn nhpp_deterministic_per_seed() {
        let works = vec![1.0; 300];
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            sample_arrivals(ArrivalProcess::diurnal(), &works, &spec(), 0.5, &mut rng)
        };
        assert_eq!(draw(13), draw(13));
        assert_ne!(draw(13), draw(14));
    }

    #[test]
    fn nhpp_respects_horizon_and_mean_rate() {
        let works = vec![1.0; 4000];
        let mut rng = StdRng::seed_from_u64(21);
        let r_max = max_release(&works, &spec(), 0.5);
        let arrivals = sample_arrivals(ArrivalProcess::diurnal(), &works, &spec(), 0.5, &mut rng);
        assert_eq!(arrivals.len(), 4000);
        assert!(arrivals.iter().all(|&r| (0.0..r_max).contains(&r)));
        // Mean-rate sanity: exactly n jobs over [0, R) means the average
        // rate is n/R by construction; check the *shape* instead — the
        // first half-cycle (sin > 0) must be visibly denser than the
        // second. With a = 0.8 the expected split is
        // (1/2 + a/π) : (1/2 − a/π) ≈ 0.755 : 0.245.
        let first_half = arrivals.iter().filter(|&&r| r < r_max / 2.0).count() as f64 / 4000.0;
        assert!(
            (first_half - 0.755).abs() < 0.04,
            "peak-half share {first_half}"
        );
    }

    #[test]
    fn nhpp_zero_amplitude_is_homogeneous() {
        let works = vec![1.0; 2000];
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = sample_arrivals(
            ArrivalProcess::Nhpp { amplitude: 0.0 },
            &works,
            &spec(),
            0.5,
            &mut rng,
        );
        let r_max = max_release(&works, &spec(), 0.5);
        let first_half = arrivals.iter().filter(|&&r| r < r_max / 2.0).count() as f64 / 2000.0;
        assert!((first_half - 0.5).abs() < 0.06, "flat share {first_half}");
    }

    #[test]
    #[should_panic(expected = "amplitude must be in [0, 1)")]
    fn nhpp_rejects_bad_amplitude() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample_arrivals(
            ArrivalProcess::Nhpp { amplitude: 1.5 },
            &[1.0],
            &spec(),
            0.5,
            &mut rng,
        );
    }
}
