//! Arrival processes for release dates.
//!
//! The paper draws release dates uniformly over `[0, R]` with
//! `R = Σw/(ℓ·Σs)` (see [`crate::load`]). As an extension we also support
//! a Poisson process with the same mean horizon — bursty arrivals are the
//! natural stress test for an online scheduler, and the two processes
//! share the load parameterization so results are comparable.

use crate::load::max_release;
use mmsec_platform::PlatformSpec;
use rand::Rng;

/// How release dates are drawn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Independent uniforms over `[0, R)` — the paper's model.
    #[default]
    Uniform,
    /// Poisson process with rate `n/R` (exponential inter-arrival times),
    /// truncated at the horizon by wrap-around to keep the load equal.
    Poisson,
}

/// Draws one release date per work according to the chosen process, under
/// the paper's load model.
pub fn sample_arrivals<R: Rng + ?Sized>(
    process: ArrivalProcess,
    works: &[f64],
    spec: &PlatformSpec,
    load: f64,
    rng: &mut R,
) -> Vec<f64> {
    let r_max = max_release(works, spec, load);
    match process {
        ArrivalProcess::Uniform => works
            .iter()
            .map(|_| {
                if r_max > 0.0 {
                    rng.gen_range(0.0..r_max)
                } else {
                    0.0
                }
            })
            .collect(),
        ArrivalProcess::Poisson => {
            let n = works.len();
            if n == 0 || r_max <= 0.0 {
                return vec![0.0; n];
            }
            let rate = n as f64 / r_max;
            let mut t = 0.0;
            (0..n)
                .map(|_| {
                    // Exponential inter-arrival: −ln(U)/λ.
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    t += -u.ln() / rate;
                    // Wrap past the horizon so the expected number of jobs
                    // in [0, R] stays n (keeps the load comparable).
                    t % r_max
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> PlatformSpec {
        PlatformSpec::homogeneous_cloud(vec![1.0], 1)
    }

    #[test]
    fn uniform_matches_load_module() {
        let works = vec![2.0; 50];
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let via_arrival = sample_arrivals(ArrivalProcess::Uniform, &works, &spec(), 0.5, &mut a);
        let via_load = crate::load::sample_releases(&works, &spec(), 0.5, &mut b);
        assert_eq!(via_arrival, via_load);
    }

    #[test]
    fn poisson_within_horizon_and_right_density() {
        let works = vec![1.0; 2000];
        let mut rng = StdRng::seed_from_u64(7);
        let r_max = max_release(&works, &spec(), 0.5);
        let arrivals = sample_arrivals(ArrivalProcess::Poisson, &works, &spec(), 0.5, &mut rng);
        assert!(arrivals.iter().all(|&r| (0.0..r_max).contains(&r)));
        // First half of the horizon should hold roughly half the jobs.
        let first_half = arrivals.iter().filter(|&&r| r < r_max / 2.0).count();
        assert!(
            (first_half as f64 / 2000.0 - 0.5).abs() < 0.06,
            "first-half share {first_half}"
        );
    }

    #[test]
    fn poisson_is_burstier_than_uniform() {
        // Variance of inter-arrival gaps (sorted): exponential gaps have
        // CV² ≈ 1, uniform order statistics the same asymptotically —
        // instead check maximum gap: Poisson wrap-around produces heavier
        // clumps; weak smoke check only: both processes produce n values.
        let works = vec![1.0; 100];
        let mut rng = StdRng::seed_from_u64(9);
        let p = sample_arrivals(ArrivalProcess::Poisson, &works, &spec(), 0.5, &mut rng);
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn empty_and_degenerate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_arrivals(ArrivalProcess::Poisson, &[], &spec(), 0.5, &mut rng).is_empty());
    }
}
