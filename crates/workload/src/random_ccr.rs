//! Random instances parameterized by the communication-to-computation
//! ratio (paper §VI-A, "Random instances").
//!
//! Default platform: 20 cloud processors, 10 slow edge units (speed 0.1)
//! and 10 fast edge units (speed 0.5). Work amounts and communication
//! times are drawn from uniform distributions of the same shape, with the
//! communication distribution scaled so that
//! `E[comm] / E[work] = CCR` — CCR 0.1 is compute-intensive, CCR 10
//! communication-intensive. Release dates follow the load model.

use crate::arrival::{sample_arrivals, ArrivalProcess};
use crate::dist::Dist;
use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a random-CCR instance (defaults = paper §VI-A).
#[derive(Clone, Debug, PartialEq)]
pub struct RandomCcrConfig {
    /// Number of jobs `n` (paper: 4000).
    pub n: usize,
    /// Communication-to-computation ratio (paper sweep: 0.1 … 10).
    pub ccr: f64,
    /// Load ℓ (paper default 0.05; Figure 2(b) sweeps to 2).
    pub load: f64,
    /// Cloud processors (paper: 20).
    pub num_cloud: usize,
    /// Number of slow edge units (paper: 10 at speed 0.1).
    pub slow_edges: usize,
    /// Speed of the slow edge units.
    pub slow_speed: f64,
    /// Number of fast edge units (paper: 10 at speed 0.5).
    pub fast_edges: usize,
    /// Speed of the fast edge units.
    pub fast_speed: f64,
    /// Base distribution of work amounts (communications reuse its shape
    /// scaled by the CCR).
    pub work_dist: Dist,
    /// Release-date process (paper: uniform; Poisson as an extension).
    pub arrivals: ArrivalProcess,
}

impl Default for RandomCcrConfig {
    fn default() -> Self {
        RandomCcrConfig {
            n: 4000,
            ccr: 1.0,
            load: 0.05,
            num_cloud: 20,
            slow_edges: 10,
            slow_speed: 0.1,
            fast_edges: 10,
            fast_speed: 0.5,
            work_dist: Dist::uniform(1.0, 10.0),
            arrivals: ArrivalProcess::Uniform,
        }
    }
}

impl RandomCcrConfig {
    /// The platform of this configuration.
    pub fn platform(&self) -> PlatformSpec {
        let mut speeds = vec![self.slow_speed; self.slow_edges];
        speeds.extend(vec![self.fast_speed; self.fast_edges]);
        PlatformSpec::builder()
            .edges(speeds)
            .cloud_pool(self.num_cloud)
            .build()
    }

    /// Generates one instance deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Instance {
        let spec = self.platform();
        let num_edge = spec.num_edge();
        let mut rng = StdRng::seed_from_u64(seed);
        let comm_dist = self.work_dist.scaled(self.ccr);

        let works: Vec<f64> = (0..self.n)
            .map(|_| self.work_dist.sample(&mut rng))
            .collect();
        let ups: Vec<f64> = (0..self.n).map(|_| comm_dist.sample(&mut rng)).collect();
        let dns: Vec<f64> = (0..self.n).map(|_| comm_dist.sample(&mut rng)).collect();
        let origins: Vec<usize> = (0..self.n).map(|_| rng.gen_range(0..num_edge)).collect();
        let releases = sample_arrivals(self.arrivals, &works, &spec, self.load, &mut rng);

        let jobs = (0..self.n)
            .map(|i| Job::new(EdgeId(origins[i]), releases[i], works[i], ups[i], dns[i]))
            .collect();
        Instance::new(spec, jobs).expect("generated instance is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let cfg = RandomCcrConfig::default();
        let spec = cfg.platform();
        assert_eq!(spec.num_cloud(), 20);
        assert_eq!(spec.num_edge(), 20);
        let slow = (0..10)
            .filter(|&j| spec.edge_speed(EdgeId(j)) == 0.1)
            .count();
        let fast = (10..20)
            .filter(|&j| spec.edge_speed(EdgeId(j)) == 0.5)
            .count();
        assert_eq!(slow, 10);
        assert_eq!(fast, 10);
    }

    #[test]
    fn ccr_controls_comm_to_work_ratio() {
        for ccr in [0.1, 1.0, 10.0] {
            let cfg = RandomCcrConfig {
                n: 3000,
                ccr,
                ..RandomCcrConfig::default()
            };
            let inst = cfg.generate(42);
            let mean_w: f64 =
                inst.jobs.iter().map(|j| j.work).sum::<f64>() / inst.num_jobs() as f64;
            let mean_c: f64 =
                inst.jobs.iter().map(|j| 0.5 * (j.up + j.dn)).sum::<f64>() / inst.num_jobs() as f64;
            let ratio = mean_c / mean_w;
            assert!(
                (ratio / ccr - 1.0).abs() < 0.1,
                "ccr {ccr}: empirical ratio {ratio}"
            );
        }
    }

    #[test]
    fn load_controls_release_horizon() {
        let light = RandomCcrConfig {
            n: 500,
            load: 0.05,
            ..RandomCcrConfig::default()
        }
        .generate(1);
        let heavy = RandomCcrConfig {
            n: 500,
            load: 2.0,
            ..RandomCcrConfig::default()
        }
        .generate(1);
        let horizon = |inst: &Instance| {
            inst.jobs
                .iter()
                .map(|j| j.release.seconds())
                .fold(0.0f64, f64::max)
        };
        // 40× smaller load ⇒ about 40× wider horizon.
        let ratio = horizon(&light) / horizon(&heavy);
        assert!(ratio > 20.0, "horizon ratio {ratio}");
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let cfg = RandomCcrConfig {
            n: 50,
            ..RandomCcrConfig::default()
        };
        assert_eq!(cfg.generate(7), cfg.generate(7));
        assert_ne!(cfg.generate(7), cfg.generate(8));
    }

    #[test]
    fn origins_cover_all_edges() {
        let cfg = RandomCcrConfig {
            n: 2000,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(3);
        let mut seen = vec![false; inst.spec.num_edge()];
        for j in &inst.jobs {
            seen[j.origin.0] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
