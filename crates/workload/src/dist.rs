//! Probability distributions used by the instance generators (§VI-A).
//!
//! The paper needs uniform variates (random instances) and normal variates
//! with a relative standard deviation of 1/4 (Kang instances). Normals are
//! generated with the Box–Muller transform — implemented here rather than
//! pulling `rand_distr`, which is not on the approved dependency list —
//! and truncated to stay positive (times are physical durations).

use rand::Rng;

/// A continuous distribution over positive reals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Dist {
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation, truncated
    /// (by resampling) to `> floor`.
    TruncNormal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        sd: f64,
        /// Strict lower bound enforced by resampling.
        floor: f64,
    },
    /// Point mass.
    Constant(f64),
    /// Exponential with the given mean (rate `1/mean`) — memoryless
    /// inter-arrival gaps and service times.
    Exponential {
        /// Mean (`1/λ`).
        mean: f64,
    },
    /// Pareto (type I) with scale `x_m` and shape `α` — the heavy-tailed
    /// work model: most jobs are small, a few are enormous. Sampled by
    /// inverse CDF: `x_m · U^(−1/α)`.
    Pareto {
        /// Scale `x_m` (strict lower bound of the support).
        scale: f64,
        /// Tail index `α`; the mean is finite only for `α > 1`.
        shape: f64,
    },
}

impl Dist {
    /// Uniform over `[lo, hi)`; panics on an empty or negative range.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad uniform range"
        );
        Dist::Uniform { lo, hi }
    }

    /// The paper's Kang-style normal: mean `m`, relative σ = 1/4,
    /// truncated at 1% of the mean.
    pub fn kang_normal(mean: f64) -> Dist {
        assert!(mean > 0.0);
        Dist::TruncNormal {
            mean,
            sd: mean / 4.0,
            floor: mean * 0.01,
        }
    }

    /// Exponential with mean `mean`; panics on a non-positive mean.
    pub fn exponential(mean: f64) -> Dist {
        assert!(mean > 0.0 && mean.is_finite(), "bad exponential mean");
        Dist::Exponential { mean }
    }

    /// Pareto with scale `x_m` and tail index `shape`; panics unless both
    /// are positive and finite.
    pub fn pareto(scale: f64, shape: f64) -> Dist {
        assert!(
            scale > 0.0 && scale.is_finite() && shape > 0.0 && shape.is_finite(),
            "bad pareto parameters"
        );
        Dist::Pareto { scale, shape }
    }

    /// Pareto normalized to the given mean at tail index `shape` (must be
    /// `> 1` for the mean to exist): `x_m = mean · (α − 1)/α`.
    pub fn pareto_with_mean(mean: f64, shape: f64) -> Dist {
        assert!(shape > 1.0, "pareto mean requires shape > 1");
        assert!(mean > 0.0 && mean.is_finite(), "bad pareto mean");
        Dist::pareto(mean * (shape - 1.0) / shape, shape)
    }

    /// Expected value (of the untruncated distribution for normals — the
    /// truncation mass is ≈ 3·10⁻⁵ at relative σ = 1/4, negligible).
    /// Infinite for a Pareto with `shape ≤ 1`.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::TruncNormal { mean, .. } => mean,
            Dist::Constant(c) => c,
            Dist::Exponential { mean } => mean,
            Dist::Pareto { scale, shape } => {
                if shape > 1.0 {
                    scale * shape / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// Draws one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Dist::TruncNormal { mean, sd, floor } => {
                // Resample until above the floor (fast: the floor is far
                // in the left tail for every paper parameterization).
                for _ in 0..1000 {
                    let x = mean + sd * standard_normal(rng);
                    if x > floor {
                        return x;
                    }
                }
                floor
            }
            Dist::Constant(c) => c,
            Dist::Exponential { mean } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::Pareto { scale, shape } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                scale * u.powf(-1.0 / shape)
            }
        }
    }

    /// Scales the distribution by `factor` (used to tie communication
    /// means to computation means through the CCR).
    pub fn scaled(&self, factor: f64) -> Dist {
        assert!(factor > 0.0 && factor.is_finite());
        match *self {
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::TruncNormal { mean, sd, floor } => Dist::TruncNormal {
                mean: mean * factor,
                sd: sd * factor,
                floor: floor * factor,
            },
            Dist::Constant(c) => Dist::Constant(c * factor),
            Dist::Exponential { mean } => Dist::Exponential {
                mean: mean * factor,
            },
            // Scaling a Pareto by a constant scales `x_m` and keeps the
            // tail index.
            Dist::Pareto { scale, shape } => Dist::Pareto {
                scale: scale * factor,
                shape,
            },
        }
    }
}

/// One standard-normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Dist::uniform(2.0, 6.0);
        assert_eq!(d.mean(), 4.0);
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| (2.0..6.0).contains(&x)));
        let emp_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((emp_mean - 4.0).abs() < 0.05, "empirical mean {emp_mean}");
    }

    #[test]
    fn kang_normal_statistics() {
        let d = Dist::kang_normal(95.0); // Wi-Fi uplink
        let mut r = rng();
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 95.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 95.0 / 4.0).abs() < 1.0, "sd {}", var.sqrt());
    }

    #[test]
    fn scaling_preserves_shape() {
        let d = Dist::uniform(1.0, 10.0).scaled(0.1);
        assert_eq!(d, Dist::uniform(0.1, 1.0));
        assert!((d.mean() - 0.55).abs() < 1e-12);
        let n = Dist::kang_normal(6.0).scaled(2.0);
        assert_eq!(n.mean(), 12.0);
        assert_eq!(Dist::Constant(3.0).scaled(2.0), Dist::Constant(6.0));
    }

    #[test]
    fn determinism_per_seed() {
        let d = Dist::kang_normal(6.0);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..50).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad uniform range")]
    fn rejects_empty_range() {
        let _ = Dist::uniform(5.0, 5.0);
    }

    #[test]
    fn exponential_mean_and_determinism() {
        let d = Dist::exponential(3.0);
        assert_eq!(d.mean(), 3.0);
        let mut r = rng();
        let samples: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let emp = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((emp - 3.0).abs() < 0.1, "empirical mean {emp}");
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(4);
            (0..30).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(4);
            (0..30).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn pareto_support_tail_and_mean() {
        let d = Dist::pareto(2.0, 2.5);
        // mean = x_m·α/(α−1) = 2·2.5/1.5 = 10/3.
        assert!((d.mean() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(Dist::pareto(1.0, 1.0).mean(), f64::INFINITY);
        let mut r = rng();
        let samples: Vec<f64> = (0..60_000).map(|_| d.sample(&mut r)).collect();
        // Support is [x_m, ∞).
        assert!(samples.iter().all(|&x| x >= 2.0));
        let emp = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((emp - 10.0 / 3.0).abs() < 0.15, "empirical mean {emp}");
        // Heavy tail: P[X > 4·x_m] = 4^(−α) ≈ 3.1% — far above what any
        // light-tailed law with this mean would put there.
        let tail = samples.iter().filter(|&&x| x > 8.0).count() as f64 / samples.len() as f64;
        assert!((tail - 0.031).abs() < 0.01, "tail mass {tail}");
    }

    #[test]
    fn pareto_with_mean_hits_the_target() {
        let d = Dist::pareto_with_mean(6.0, 3.0);
        assert!((d.mean() - 6.0).abs() < 1e-12);
        let scaled = d.scaled(2.0);
        assert!((scaled.mean() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_determinism_per_seed() {
        let d = Dist::pareto(1.0, 1.5);
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(77);
            (0..50).map(|_| d.sample(&mut r).to_bits()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(77);
            (0..50).map(|_| d.sample(&mut r).to_bits()).collect()
        };
        assert_eq!(a, b);
    }
}
