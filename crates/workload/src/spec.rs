//! One workload API over every generator in this crate.
//!
//! Historically each generator grew its own shape — [`RandomCcrConfig`],
//! [`KangConfig`], the load driver's private exponential scripts — and
//! each consumer (bench harness, repro pipeline, socket load generator,
//! trace replayer) re-plumbed seeds and platforms its own way. The
//! [`Workload`] trait collapses those paths: a workload is a platform
//! plus a deterministic `seed → Instance` map, nothing more. Consumers
//! hold a `&dyn Workload` (or a concrete config) and stop caring which
//! family it came from.
//!
//! [`WorkloadSpec`] is the free-form member of the family: any
//! [`Dist`] for work/uplink/downlink (including the heavy-tailed
//! [`Dist::Pareto`]), any [`ArrivalProcess`] (including the diurnal
//! NHPP), over any platform — assembled with [`WorkloadSpec::builder`].

use crate::arrival::{sample_arrivals, ArrivalProcess};
use crate::dist::Dist;
use crate::kang::KangConfig;
use crate::random_ccr::RandomCcrConfig;
use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible instance generator: a platform plus a pure
/// `seed → Instance` map. Every generator family in this crate
/// implements it, so harnesses can be written once against the trait.
pub trait Workload {
    /// The platform instances of this workload run on.
    fn platform(&self) -> PlatformSpec;

    /// Generates one instance deterministically from `seed`.
    fn generate(&self, seed: u64) -> Instance;
}

impl Workload for RandomCcrConfig {
    fn platform(&self) -> PlatformSpec {
        RandomCcrConfig::platform(self)
    }

    fn generate(&self, seed: u64) -> Instance {
        RandomCcrConfig::generate(self, seed)
    }
}

impl Workload for KangConfig {
    fn platform(&self) -> PlatformSpec {
        KangConfig::platform(self)
    }

    fn generate(&self, seed: u64) -> Instance {
        KangConfig::generate(self, seed)
    }
}

/// A fully parametric workload: independent work/uplink/downlink draws,
/// a pluggable arrival process under the paper's load model, uniform
/// origins over the platform's edges. Built with [`WorkloadSpec::builder`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// The platform instances run on.
    pub platform: PlatformSpec,
    /// Number of jobs per instance.
    pub n: usize,
    /// Work distribution.
    pub work: Dist,
    /// Uplink-time distribution (`Constant(0)` for no uplink).
    pub up: Dist,
    /// Downlink-time distribution (`Constant(0)` for no downlink).
    pub dn: Dist,
    /// Release-date process.
    pub arrivals: ArrivalProcess,
    /// Load ℓ of the release model (`R = Σw/(ℓ·Σs)`).
    pub load: f64,
}

impl WorkloadSpec {
    /// Starts a builder over `platform` with the paper's defaults:
    /// 1000 jobs, uniform `[1, 10)` work, no communication, uniform
    /// arrivals at load 0.05.
    pub fn builder(platform: PlatformSpec) -> WorkloadBuilder {
        WorkloadBuilder {
            spec: WorkloadSpec {
                platform,
                n: 1000,
                work: Dist::uniform(1.0, 10.0),
                up: Dist::Constant(0.0),
                dn: Dist::Constant(0.0),
                arrivals: ArrivalProcess::Uniform,
                load: 0.05,
            },
        }
    }
}

impl Workload for WorkloadSpec {
    fn platform(&self) -> PlatformSpec {
        self.platform.clone()
    }

    fn generate(&self, seed: u64) -> Instance {
        let spec = self.platform.clone();
        let num_edge = spec.num_edge();
        assert!(num_edge > 0, "workload platform needs at least one edge");
        let mut rng = StdRng::seed_from_u64(seed);
        let works: Vec<f64> = (0..self.n).map(|_| self.work.sample(&mut rng)).collect();
        let ups: Vec<f64> = (0..self.n).map(|_| self.up.sample(&mut rng)).collect();
        let dns: Vec<f64> = (0..self.n).map(|_| self.dn.sample(&mut rng)).collect();
        let origins: Vec<usize> = (0..self.n).map(|_| rng.gen_range(0..num_edge)).collect();
        let releases = sample_arrivals(self.arrivals, &works, &spec, self.load, &mut rng);
        let jobs = (0..self.n)
            .map(|i| Job::new(EdgeId(origins[i]), releases[i], works[i], ups[i], dns[i]))
            .collect();
        Instance::new(spec, jobs).expect("generated instance is valid")
    }
}

/// Chained constructor for [`WorkloadSpec`].
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    spec: WorkloadSpec,
}

impl WorkloadBuilder {
    /// Sets the number of jobs.
    pub fn jobs(mut self, n: usize) -> Self {
        self.spec.n = n;
        self
    }

    /// Sets the work distribution.
    pub fn work(mut self, d: Dist) -> Self {
        self.spec.work = d;
        self
    }

    /// Sets the uplink-time distribution.
    pub fn uplink(mut self, d: Dist) -> Self {
        self.spec.up = d;
        self
    }

    /// Sets the downlink-time distribution.
    pub fn downlink(mut self, d: Dist) -> Self {
        self.spec.dn = d;
        self
    }

    /// Sets both communication distributions to the work distribution
    /// scaled by `ccr` (the random-CCR coupling).
    pub fn ccr(mut self, ccr: f64) -> Self {
        let comm = self.spec.work.scaled(ccr);
        self.spec.up = comm;
        self.spec.dn = comm;
        self
    }

    /// Sets the arrival process.
    pub fn arrivals(mut self, p: ArrivalProcess) -> Self {
        self.spec.arrivals = p;
        self
    }

    /// Sets the load ℓ; panics unless positive and finite.
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load.is_finite(), "load must be positive");
        self.spec.load = load;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> WorkloadSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> PlatformSpec {
        PlatformSpec::builder()
            .edges([0.5, 1.0])
            .cloud_pool(3)
            .build()
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let w = WorkloadSpec::builder(platform())
            .jobs(50)
            .work(Dist::pareto_with_mean(5.0, 2.0))
            .ccr(0.5)
            .arrivals(ArrivalProcess::diurnal())
            .load(0.2)
            .build();
        assert_eq!(w.n, 50);
        assert_eq!(w.load, 0.2);
        assert!((w.up.mean() - 2.5).abs() < 1e-12);
        assert_eq!(w.up, w.dn);
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let w = WorkloadSpec::builder(platform())
            .jobs(200)
            .work(Dist::pareto_with_mean(4.0, 2.5))
            .uplink(Dist::exponential(1.0))
            .build();
        let a = w.generate(3);
        let b = w.generate(3);
        assert_eq!(a, b);
        assert_ne!(a, w.generate(4));
        assert_eq!(a.num_jobs(), 200);
        assert!(a.jobs.iter().all(|j| j.work > 0.0 && j.dn == 0.0));
    }

    #[test]
    fn trait_objects_unify_the_families() {
        let ccr = RandomCcrConfig {
            n: 20,
            ..RandomCcrConfig::default()
        };
        let kang = KangConfig {
            n: 20,
            ..KangConfig::default()
        };
        let free = WorkloadSpec::builder(platform()).jobs(20).build();
        let all: Vec<Box<dyn Workload>> = vec![Box::new(ccr), Box::new(kang), Box::new(free)];
        for w in &all {
            let inst = w.generate(1);
            assert_eq!(inst.num_jobs(), 20);
            assert_eq!(inst.spec.num_edge(), w.platform().num_edge());
        }
    }

    #[test]
    fn heavy_tail_shows_up_in_generated_work() {
        let w = WorkloadSpec::builder(platform())
            .jobs(4000)
            .work(Dist::pareto_with_mean(1.0, 1.5))
            .build();
        let inst = w.generate(9);
        let max = inst.jobs.iter().map(|j| j.work).fold(0.0f64, f64::max);
        let mean = inst.jobs.iter().map(|j| j.work).sum::<f64>() / 4000.0;
        // α = 1.5: the sample maximum dwarfs the mean (infinite variance).
        assert!(max / mean > 20.0, "max/mean {}", max / mean);
    }
}
