//! `mmsec-workload` — instance generators reproducing the simulation setup
//! of paper §VI-A:
//!
//! * [`RandomCcrConfig`] — random instances tied together by the
//!   communication-to-computation ratio (Figures 2(a) and 2(b));
//! * [`KangConfig`] — realistic instances after Kang et al. \[24\]
//!   (Figures 2(c) and 2(d));
//! * [`WorkloadSpec`] — the free-form parametric generator (any
//!   distribution × any arrival process × any platform);
//! * [`load`] — the release-date model controlling system load;
//! * [`dist`] — the underlying distribution toolkit (uniform, Box–Muller
//!   truncated normal, exponential, heavy-tailed Pareto).
//!
//! All generators are pure functions of their configuration and a `u64`
//! seed, so experiments are exactly reproducible — and all implement the
//! unifying [`Workload`] trait (platform + `seed → Instance`).

#![warn(missing_docs)]

pub mod adversarial;
pub mod arrival;
pub mod dist;
pub mod kang;
pub mod load;
pub mod random_ccr;
pub mod spec;

pub use arrival::ArrivalProcess;
pub use dist::Dist;
pub use kang::{Channel, ComputeType, EdgeProfile, KangConfig};
pub use random_ccr::RandomCcrConfig;
pub use spec::{Workload, WorkloadBuilder, WorkloadSpec};
