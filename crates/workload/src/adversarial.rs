//! Adversarial instances for probing online max-stretch schedulers.
//!
//! The paper recalls (\[3\], §II) that no online algorithm can beat
//! Δ-competitiveness in general — the hard instances interleave long and
//! short jobs so that serving one class starves the other. These
//! deterministic generators build the two classic shapes:
//!
//! * [`long_vs_shorts`] — one long job, then a dense stream of unit jobs:
//!   SRPT-like policies starve the long job (its stretch grows with the
//!   stream length), deadline-driven policies balance both;
//! * [`geometric_chain`] — jobs of geometrically decreasing length, each
//!   released just before the previous one would finish: whatever the
//!   scheduler runs, something waits.

use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec};

/// One long job (`delta` work) at time 0, then `num_shorts` unit jobs
/// released one per time unit, all on a single unit-speed edge with no
/// cloud. `Δ = delta`.
pub fn long_vs_shorts(delta: f64, num_shorts: usize) -> Instance {
    assert!(delta >= 1.0, "the long job defines Δ ≥ 1");
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(0)
        .build();
    let mut jobs = vec![Job::new(EdgeId(0), 0.0, delta, 0.0, 0.0)];
    for i in 0..num_shorts {
        jobs.push(Job::new(EdgeId(0), i as f64, 1.0, 0.0, 0.0));
    }
    Instance::new(spec, jobs).expect("valid adversarial instance")
}

/// `levels` jobs of lengths `Δ, Δ/2, Δ/4, …` where job `k+1` is released
/// exactly when job `k` would complete if started immediately — a cascade
/// of painful preemption decisions. Single unit-speed edge, no cloud.
pub fn geometric_chain(delta: f64, levels: usize) -> Instance {
    assert!(delta >= 1.0 && levels >= 1);
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(0)
        .build();
    let mut jobs = Vec::with_capacity(levels);
    let mut release = 0.0;
    let mut len = delta;
    for _ in 0..levels {
        jobs.push(Job::new(EdgeId(0), release, len, 0.0, 0.0));
        release += len * 0.5;
        len *= 0.5;
    }
    Instance::new(spec, jobs).expect("valid adversarial instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_vs_shorts_shape() {
        let inst = long_vs_shorts(10.0, 5);
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.delta(), 10.0);
        assert_eq!(inst.jobs[0].work, 10.0);
        assert_eq!(inst.jobs[3].release.seconds(), 2.0);
    }

    #[test]
    fn geometric_chain_shape() {
        let inst = geometric_chain(8.0, 4);
        assert_eq!(inst.num_jobs(), 4);
        let lens: Vec<f64> = inst.jobs.iter().map(|j| j.work).collect();
        assert_eq!(lens, vec![8.0, 4.0, 2.0, 1.0]);
        let rels: Vec<f64> = inst.jobs.iter().map(|j| j.release.seconds()).collect();
        assert_eq!(rels, vec![0.0, 4.0, 6.0, 7.0]);
    }

    /// The construction does what it promises: SRPT's max-stretch grows
    /// with the stream length while SSF-EDF's stays bounded.
    #[test]
    fn srpt_starves_long_job_ssf_edf_does_not() {
        use mmsec_core::PolicyKind;
        use mmsec_platform::{Simulation, StretchReport};
        let short_stream = long_vs_shorts(10.0, 10);
        let long_stream = long_vs_shorts(10.0, 40);

        let run = |inst: &Instance, kind: PolicyKind| {
            let mut p = kind.build(0);
            let out = Simulation::of(inst).policy(p.as_mut()).run().unwrap();
            StretchReport::new(inst, &out.schedule).max_stretch
        };

        let srpt_short = run(&short_stream, PolicyKind::Srpt);
        let srpt_long = run(&long_stream, PolicyKind::Srpt);
        assert!(
            srpt_long > srpt_short + 1.0,
            "SRPT starvation should grow with the stream: {srpt_short} vs {srpt_long}"
        );

        // In a fully saturating unit stream the optimal max-stretch is
        // forced (any policy serving the shorts first achieves it), so
        // SSF-EDF can only tie here — it must not be worse.
        let ssf_long = run(&long_stream, PolicyKind::SsfEdf);
        assert!(
            ssf_long <= srpt_long + 1e-9,
            "SSF-EDF must handle the stream at least as well: {ssf_long} vs {srpt_long}"
        );
    }

    #[test]
    #[should_panic(expected = "Δ ≥ 1")]
    fn rejects_sub_unit_delta() {
        let _ = long_vs_shorts(0.5, 3);
    }
}
