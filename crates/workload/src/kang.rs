//! Kang-style instances (paper §VI-A, "Kang instances", after Kang et
//! al. \[24\] — *Neurosurgeon*-style measurements of mobile/edge DNN
//! workloads).
//!
//! Edge units have a compute type (GPU: speed 6/11; CPU: speed 6/37) and a
//! network channel (Wi-Fi: mean uplink 95; LTE: 180; 3G: 870). Jobs draw:
//!
//! * work from `N(6, (6/4)²)`,
//! * uplink from `N(t, (t/4)²)` with `t` set by the origin's channel,
//! * downlink = 0 ("the place of delivery is not relevant"),
//!
//! all truncated positive; release dates follow the load model.

use crate::dist::Dist;
use crate::load;
use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compute capability of an edge unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeType {
    /// Mobile GPU — speed 6/11 (paper, after \[24\]).
    Gpu,
    /// Mobile CPU — speed 6/37.
    Cpu,
}

impl ComputeType {
    /// Edge speed of this compute type.
    pub fn speed(self) -> f64 {
        match self {
            ComputeType::Gpu => 6.0 / 11.0,
            ComputeType::Cpu => 6.0 / 37.0,
        }
    }
}

/// Network channel of an edge unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Channel {
    /// Mean uplink time 95.
    WiFi,
    /// Mean uplink time 180.
    Lte,
    /// Mean uplink time 870.
    ThreeG,
}

impl Channel {
    /// Mean uplink communication time on this channel.
    pub fn mean_uplink(self) -> f64 {
        match self {
            Channel::WiFi => 95.0,
            Channel::Lte => 180.0,
            Channel::ThreeG => 870.0,
        }
    }
}

/// One edge unit profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeProfile {
    /// Compute capability.
    pub compute: ComputeType,
    /// Network channel.
    pub channel: Channel,
}

/// The six (compute × channel) combinations, cycled over edge units.
pub const PROFILE_CYCLE: [EdgeProfile; 6] = [
    EdgeProfile {
        compute: ComputeType::Gpu,
        channel: Channel::WiFi,
    },
    EdgeProfile {
        compute: ComputeType::Cpu,
        channel: Channel::WiFi,
    },
    EdgeProfile {
        compute: ComputeType::Gpu,
        channel: Channel::Lte,
    },
    EdgeProfile {
        compute: ComputeType::Cpu,
        channel: Channel::Lte,
    },
    EdgeProfile {
        compute: ComputeType::Gpu,
        channel: Channel::ThreeG,
    },
    EdgeProfile {
        compute: ComputeType::Cpu,
        channel: Channel::ThreeG,
    },
];

/// Configuration of a Kang instance (defaults = paper Figure 2(c)).
#[derive(Clone, Debug, PartialEq)]
pub struct KangConfig {
    /// Number of edge units (paper: 20 in Fig. 2(c), 100 in Fig. 2(d)).
    pub num_edge: usize,
    /// Number of cloud processors (paper: 10).
    pub num_cloud: usize,
    /// Number of jobs.
    pub n: usize,
    /// Load ℓ (paper default 0.05).
    pub load: f64,
    /// Mean work (paper: 6, relative σ 1/4).
    pub mean_work: f64,
    /// When set, edge profiles are a seeded shuffle of the cycle instead
    /// of the deterministic round-robin (the paper does not specify the
    /// device mix; this probes sensitivity to it).
    pub profile_seed: Option<u64>,
}

impl Default for KangConfig {
    fn default() -> Self {
        KangConfig {
            num_edge: 20,
            num_cloud: 10,
            n: 1000,
            load: 0.05,
            mean_work: 6.0,
            profile_seed: None,
        }
    }
}

impl KangConfig {
    /// Edge profiles: the six (compute × channel) combinations cycled
    /// round-robin, optionally shuffled by `profile_seed`.
    pub fn profiles(&self) -> Vec<EdgeProfile> {
        let mut profiles: Vec<EdgeProfile> = (0..self.num_edge)
            .map(|j| PROFILE_CYCLE[j % PROFILE_CYCLE.len()])
            .collect();
        if let Some(seed) = self.profile_seed {
            let mut sm = mmsec_sim::seed::SplitMix64::new(seed);
            for i in (1..profiles.len()).rev() {
                let j = (sm.next_u64() % (i as u64 + 1)) as usize;
                profiles.swap(i, j);
            }
        }
        profiles
    }

    /// The platform of this configuration.
    pub fn platform(&self) -> PlatformSpec {
        let speeds: Vec<f64> = self.profiles().iter().map(|p| p.compute.speed()).collect();
        PlatformSpec::builder()
            .edges(speeds)
            .cloud_pool(self.num_cloud)
            .build()
    }

    /// Generates one instance deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Instance {
        let spec = self.platform();
        let profiles = self.profiles();
        let mut rng = StdRng::seed_from_u64(seed);
        let work_dist = Dist::kang_normal(self.mean_work);

        let origins: Vec<usize> = (0..self.n)
            .map(|_| rng.gen_range(0..self.num_edge))
            .collect();
        let works: Vec<f64> = (0..self.n).map(|_| work_dist.sample(&mut rng)).collect();
        let ups: Vec<f64> = origins
            .iter()
            .map(|&o| Dist::kang_normal(profiles[o].channel.mean_uplink()).sample(&mut rng))
            .collect();
        let releases = load::sample_releases(&works, &spec, self.load, &mut rng);

        let jobs = (0..self.n)
            .map(|i| Job::new(EdgeId(origins[i]), releases[i], works[i], ups[i], 0.0))
            .collect();
        Instance::new(spec, jobs).expect("generated instance is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speeds_match_paper() {
        assert!((ComputeType::Gpu.speed() - 6.0 / 11.0).abs() < 1e-15);
        assert!((ComputeType::Cpu.speed() - 6.0 / 37.0).abs() < 1e-15);
        assert_eq!(Channel::WiFi.mean_uplink(), 95.0);
        assert_eq!(Channel::Lte.mean_uplink(), 180.0);
        assert_eq!(Channel::ThreeG.mean_uplink(), 870.0);
    }

    #[test]
    fn platform_shape() {
        let cfg = KangConfig::default();
        let spec = cfg.platform();
        assert_eq!(spec.num_edge(), 20);
        assert_eq!(spec.num_cloud(), 10);
        // All edge speeds come from the two compute types.
        for j in spec.edges() {
            let s = spec.edge_speed(j);
            assert!(
                (s - 6.0 / 11.0).abs() < 1e-12 || (s - 6.0 / 37.0).abs() < 1e-12,
                "unexpected speed {s}"
            );
        }
    }

    #[test]
    fn downlinks_are_zero_and_uplinks_match_channels() {
        let cfg = KangConfig {
            n: 3000,
            ..KangConfig::default()
        };
        let inst = cfg.generate(11);
        let profiles = cfg.profiles();
        assert!(inst.jobs.iter().all(|j| j.dn == 0.0));
        // Per-channel empirical uplink means are close to the targets.
        for channel in [Channel::WiFi, Channel::Lte, Channel::ThreeG] {
            let ups: Vec<f64> = inst
                .jobs
                .iter()
                .filter(|j| profiles[j.origin.0].channel == channel)
                .map(|j| j.up)
                .collect();
            assert!(ups.len() > 100, "few samples for {channel:?}");
            let mean = ups.iter().sum::<f64>() / ups.len() as f64;
            let target = channel.mean_uplink();
            assert!(
                (mean / target - 1.0).abs() < 0.05,
                "{channel:?}: mean {mean} vs {target}"
            );
        }
    }

    #[test]
    fn work_distribution_statistics() {
        let cfg = KangConfig {
            n: 20_000,
            num_edge: 6,
            ..KangConfig::default()
        };
        let inst = cfg.generate(5);
        let works: Vec<f64> = inst.jobs.iter().map(|j| j.work).collect();
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean work {mean}");
        assert!(works.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = KangConfig {
            n: 100,
            ..KangConfig::default()
        };
        assert_eq!(cfg.generate(1), cfg.generate(1));
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn shuffled_profiles_are_a_permutation() {
        let base = KangConfig {
            num_edge: 12,
            ..KangConfig::default()
        };
        let shuffled = KangConfig {
            profile_seed: Some(99),
            ..base.clone()
        };
        let mut a = base.profiles();
        let mut b = shuffled.profiles();
        assert_ne!(a, b, "seeded shuffle must change the order");
        // Same multiset of profiles.
        let key = |p: &EdgeProfile| (p.compute.speed().to_bits(), p.channel.mean_uplink() as u64);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        // Deterministic per seed; platform matches profiles.
        assert_eq!(shuffled.profiles(), shuffled.profiles());
        let spec = shuffled.platform();
        for (j, p) in shuffled.profiles().iter().enumerate() {
            assert_eq!(
                spec.edge_speed(mmsec_platform::EdgeId(j)),
                p.compute.speed()
            );
        }
        // Instances generate and validate.
        let inst = KangConfig { n: 30, ..shuffled }.generate(1);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn hundred_edges_config() {
        // Figure 2(d): 100 edge units, 10 clouds.
        let cfg = KangConfig {
            num_edge: 100,
            n: 200,
            ..KangConfig::default()
        };
        let inst = cfg.generate(1);
        assert_eq!(inst.spec.num_edge(), 100);
        assert_eq!(inst.spec.num_cloud(), 10);
        assert_eq!(inst.num_jobs(), 200);
    }
}
