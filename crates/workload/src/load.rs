//! Load-controlled release dates (paper §VI-A).
//!
//! "The distribution of the release dates is chosen to control the load on
//! edge processors [...] for a load ℓ, the maximum release date is set to
//! `Σ_i w_i / (ℓ · Σ_j s_j)`" — the aggregate work over the aggregate
//! platform speed, divided by the load. Release dates are then drawn
//! uniformly over `[0, R]`. Small ℓ spreads jobs out (light load); the
//! paper defaults to ℓ = 0.05 and stresses systems up to ℓ = 2.

use mmsec_platform::PlatformSpec;
use rand::Rng;

/// Maximum release date for the given works, platform, and load ℓ.
pub fn max_release(works: &[f64], spec: &PlatformSpec, load: f64) -> f64 {
    assert!(load > 0.0, "load must be positive");
    let total_work: f64 = works.iter().sum();
    total_work / (load * spec.total_speed())
}

/// Draws one release date per work, uniformly over `[0, max_release)`.
pub fn sample_releases<R: Rng + ?Sized>(
    works: &[f64],
    spec: &PlatformSpec,
    load: f64,
    rng: &mut R,
) -> Vec<f64> {
    let r_max = max_release(works, spec, load);
    works
        .iter()
        .map(|_| {
            if r_max > 0.0 {
                rng.gen_range(0.0..r_max)
            } else {
                0.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_release_formula() {
        // total work 100, total speed (0.5 + 0.5 + 1.0) = 2, load 0.05:
        // R = 100 / (0.05 * 2) = 1000.
        let spec = PlatformSpec::builder()
            .edges(vec![0.5, 0.5])
            .cloud_pool(1)
            .build();
        let works = vec![60.0, 40.0];
        assert!((max_release(&works, &spec, 0.05) - 1000.0).abs() < 1e-9);
        // Doubling the load halves the horizon.
        assert!((max_release(&works, &spec, 0.1) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn releases_within_horizon() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let works = vec![5.0; 100];
        let mut rng = StdRng::seed_from_u64(3);
        let releases = sample_releases(&works, &spec, 0.5, &mut rng);
        let r_max = max_release(&works, &spec, 0.5);
        assert_eq!(releases.len(), 100);
        assert!(releases.iter().all(|&r| (0.0..r_max).contains(&r)));
    }

    #[test]
    #[should_panic(expected = "load must be positive")]
    fn rejects_zero_load() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let _ = max_release(&[1.0], &spec, 0.0);
    }
}
