//! `mmsec-faults` — seeded failure models for the edge-cloud platform.
//!
//! The paper's online model (§III-C) allows a job to be *interrupted and
//! restarted*, but the base engine never forces a restart: no unit fails,
//! no link degrades. This crate supplies that missing half. A
//! [`FaultConfig`] describes *how* units fail — per-unit crash/recover
//! availability via exponential MTBF/MTTR sampling or explicit trace
//! lists, plus transient communication outage/degradation windows — and
//! [`FaultConfig::compile`] turns it into a [`FaultPlan`]: a concrete,
//! fully deterministic family of down-windows that the engine replays as
//! `UnitDown`/`UnitUp`/`LinkChange` events.
//!
//! Everything is a pure function of the fault seed: the same
//! `(config, seed, horizon)` triple always compiles to bit-identical
//! plans, so faulty experiments are as reproducible as fault-free ones.
//! An empty plan (`FaultPlan::empty`, or any config whose models are all
//! [`UnitFaultModel::None`]) injects nothing and must leave the engine's
//! schedule bit-identical to a run without a plan.

#![warn(missing_docs)]

use mmsec_sim::seed::{self, SplitMix64};
use mmsec_sim::{Interval, IntervalSet, Time};

/// A transient communication window on one edge's uplink/downlink pair.
///
/// While `window` is active the edge's communication capacity is scaled by
/// `factor`: `0.0` is a full outage (no bytes move, in-flight transfers
/// pause in place), values in `(0, 1)` model degradation (transfers slow
/// down proportionally). Progress is *not* lost — unlike a unit crash, a
/// link fault never triggers a restart.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkWindow {
    /// When the fault is active.
    pub window: Interval,
    /// Capacity multiplier in `[0, 1]` applied to both link directions.
    pub factor: f64,
}

impl LinkWindow {
    /// Creates a window; panics unless `factor ∈ [0, 1]`.
    pub fn new(window: Interval, factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&factor),
            "link factor {factor} outside [0, 1]"
        );
        LinkWindow { window, factor }
    }
}

/// How one unit (edge server or cloud processor) fails over time.
#[derive(Clone, Debug, PartialEq)]
pub enum UnitFaultModel {
    /// The unit never fails.
    None,
    /// Alternating up/down durations sampled i.i.d. exponential: up-times
    /// with mean `mtbf`, repair times with mean `mttr` (both in virtual
    /// seconds, both strictly positive).
    Exponential {
        /// Mean time between failures.
        mtbf: f64,
        /// Mean time to repair.
        mttr: f64,
    },
    /// Explicit list of down-windows (must be pairwise disjoint).
    Trace(Vec<Interval>),
    /// Fail-stop: the unit crashes at the given time and never recovers.
    /// A job whose only compatible unit is fail-stopped can never finish;
    /// the engine surfaces that as a clean `Stalled` error once nothing
    /// else can make progress.
    FailStop(f64),
}

/// How one edge's communication link fails over time.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkFaultModel {
    /// The link never degrades.
    None,
    /// Exponentially sampled outage/degradation windows: up-times with
    /// mean `mtbf`, fault durations with mean `mttr`, each fault scaling
    /// capacity by `factor`.
    Exponential {
        /// Mean time between link faults.
        mtbf: f64,
        /// Mean fault duration.
        mttr: f64,
        /// Capacity multiplier while faulty (`0.0` = outage).
        factor: f64,
    },
    /// Explicit degradation windows (must be pairwise disjoint).
    Windows(Vec<LinkWindow>),
}

/// Failure models for every unit of a platform, ready to compile.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// One model per edge server (crash/recover).
    pub edges: Vec<UnitFaultModel>,
    /// One model per cloud processor (crash/recover).
    pub clouds: Vec<UnitFaultModel>,
    /// One model per edge's uplink/downlink pair.
    pub links: Vec<LinkFaultModel>,
}

impl FaultConfig {
    /// A config that injects nothing on a `num_edge` × `num_cloud` platform.
    pub fn none(num_edge: usize, num_cloud: usize) -> Self {
        FaultConfig {
            edges: vec![UnitFaultModel::None; num_edge],
            clouds: vec![UnitFaultModel::None; num_cloud],
            links: vec![LinkFaultModel::None; num_edge],
        }
    }

    /// The CLI/bench workhorse: every edge and cloud fails with the same
    /// exponential `mtbf`/`mttr`, links stay healthy.
    pub fn uniform_exponential(num_edge: usize, num_cloud: usize, mtbf: f64, mttr: f64) -> Self {
        let model = UnitFaultModel::Exponential { mtbf, mttr };
        FaultConfig {
            edges: vec![model.clone(); num_edge],
            clouds: vec![model; num_cloud],
            links: vec![LinkFaultModel::None; num_edge],
        }
    }

    /// Compiles the config into a concrete plan.
    ///
    /// Exponential models are sampled with per-unit RNG streams derived
    /// from `fault_seed` (labels `"edge-fault"`, `"cloud-fault"`,
    /// `"link-fault"`), so adding a unit never perturbs the windows of the
    /// others. Sampling stops once a fault would *begin* at or beyond
    /// `horizon`; a window that starts before the horizon keeps its full
    /// sampled length, so its recovery boundary still fires. Trace models
    /// are copied through verbatim (and may extend past the horizon —
    /// that is how a permanently-down unit is expressed).
    ///
    /// Panics on overlapping trace windows or non-positive MTBF/MTTR.
    pub fn compile(&self, fault_seed: u64, horizon: Time) -> FaultPlan {
        let mut plan = FaultPlan::empty(self.edges.len(), self.clouds.len());
        for (j, model) in self.edges.iter().enumerate() {
            let rng = SplitMix64::new(seed::derive(fault_seed, "edge-fault", j as u64));
            if let UnitFaultModel::FailStop(t) = model {
                plan.set_edge_dead_from(j, Time::new(*t));
            } else {
                sample_unit(model, rng, horizon, &mut plan.edge_down[j], "edge", j);
            }
        }
        for (k, model) in self.clouds.iter().enumerate() {
            let rng = SplitMix64::new(seed::derive(fault_seed, "cloud-fault", k as u64));
            if let UnitFaultModel::FailStop(t) = model {
                plan.set_cloud_dead_from(k, Time::new(*t));
            } else {
                sample_unit(model, rng, horizon, &mut plan.cloud_down[k], "cloud", k);
            }
        }
        for (j, model) in self.links.iter().enumerate() {
            plan.link[j] = sample_link(
                model,
                SplitMix64::new(seed::derive(fault_seed, "link-fault", j as u64)),
                horizon,
                j,
            );
        }
        plan
    }
}

/// Samples one exponential duration with the given mean.
fn exp_sample(rng: &mut SplitMix64, mean: f64) -> f64 {
    // Inverse-CDF; `1 − u ∈ (0, 1]` keeps ln finite.
    -mean * (1.0 - rng.next_f64()).ln()
}

fn sample_unit(
    model: &UnitFaultModel,
    mut rng: SplitMix64,
    horizon: Time,
    out: &mut IntervalSet,
    kind: &str,
    idx: usize,
) {
    match model {
        UnitFaultModel::None => {}
        UnitFaultModel::FailStop(_) => unreachable!("handled by the compile loop"),
        UnitFaultModel::Exponential { mtbf, mttr } => {
            assert!(
                *mtbf > 0.0 && mtbf.is_finite() && *mttr > 0.0 && mttr.is_finite(),
                "{kind} {idx}: MTBF/MTTR must be positive finite, got {mtbf}/{mttr}"
            );
            let mut t = 0.0;
            loop {
                t += exp_sample(&mut rng, *mtbf);
                if t >= horizon.seconds() {
                    break;
                }
                let down = exp_sample(&mut rng, *mttr);
                out.insert(Interval::from_secs(t, t + down))
                    .expect("sampled windows are generated in order and disjoint");
                t += down;
            }
        }
        UnitFaultModel::Trace(windows) => {
            for w in windows {
                out.insert(*w)
                    .unwrap_or_else(|c| panic!("{kind} {idx}: trace window {w:?} overlaps {c:?}"));
            }
        }
    }
}

fn sample_link(
    model: &LinkFaultModel,
    mut rng: SplitMix64,
    horizon: Time,
    idx: usize,
) -> Vec<LinkWindow> {
    match model {
        LinkFaultModel::None => Vec::new(),
        LinkFaultModel::Exponential { mtbf, mttr, factor } => {
            assert!(
                *mtbf > 0.0 && mtbf.is_finite() && *mttr > 0.0 && mttr.is_finite(),
                "link {idx}: MTBF/MTTR must be positive finite, got {mtbf}/{mttr}"
            );
            let mut out = Vec::new();
            let mut t = 0.0;
            loop {
                t += exp_sample(&mut rng, *mtbf);
                if t >= horizon.seconds() {
                    break;
                }
                let down = exp_sample(&mut rng, *mttr);
                let window = Interval::from_secs(t, t + down);
                if !window.is_empty() {
                    out.push(LinkWindow::new(window, *factor));
                }
                t += down;
            }
            out
        }
        LinkFaultModel::Windows(windows) => {
            let mut out = windows.clone();
            out.sort_by_key(|a| a.window.start());
            for pair in out.windows(2) {
                assert!(
                    !pair[0].window.overlaps(&pair[1].window),
                    "link {idx}: windows {:?} and {:?} overlap",
                    pair[0].window,
                    pair[1].window
                );
            }
            for w in &out {
                // Re-run the factor range check for windows built literally.
                let _ = LinkWindow::new(w.window, w.factor);
            }
            out.retain(|w| !w.window.is_empty());
            out
        }
    }
}

/// One availability-change boundary of a compiled plan, in the order the
/// engine must observe them when priming its event queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultBoundary {
    /// Edge server `.0` crashes at `.1`.
    EdgeDown(usize, Time),
    /// Edge server `.0` recovers at `.1`.
    EdgeUp(usize, Time),
    /// Cloud processor `.0` crashes at `.1`.
    CloudDown(usize, Time),
    /// Cloud processor `.0` recovers at `.1`.
    CloudUp(usize, Time),
    /// The link capacity of edge `.0` changes at `.1` (either direction —
    /// the engine re-reads the factor from the plan).
    LinkChange(usize, Time),
}

impl FaultBoundary {
    /// True for boundaries that restore capacity (unit recoveries).
    ///
    /// The engine queues recoveries at an earlier rank than crashes so
    /// that two windows touching at an instant net to "down" there
    /// (half-open windows: recovery applies first, then the next crash).
    /// Link changes are *not* recoveries even when the factor goes back
    /// up — the engine re-reads the factor either way.
    pub fn is_recovery(self) -> bool {
        matches!(self, FaultBoundary::EdgeUp(..) | FaultBoundary::CloudUp(..))
    }

    /// The instant the boundary fires.
    pub fn time(self) -> Time {
        match self {
            FaultBoundary::EdgeDown(_, t)
            | FaultBoundary::EdgeUp(_, t)
            | FaultBoundary::CloudDown(_, t)
            | FaultBoundary::CloudUp(_, t)
            | FaultBoundary::LinkChange(_, t) => t,
        }
    }
}

/// A compiled, concrete fault schedule: per-unit down-window sets plus
/// per-edge link windows. This is what the engine consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    edge_down: Vec<IntervalSet>,
    cloud_down: Vec<IntervalSet>,
    /// Fail-stop instant per edge: down forever from that time on.
    edge_dead_from: Vec<Option<Time>>,
    /// Fail-stop instant per cloud.
    cloud_dead_from: Vec<Option<Time>>,
    link: Vec<Vec<LinkWindow>>,
}

impl FaultPlan {
    /// A plan with no faults for a `num_edge` × `num_cloud` platform.
    pub fn empty(num_edge: usize, num_cloud: usize) -> Self {
        FaultPlan {
            edge_down: vec![IntervalSet::new(); num_edge],
            cloud_down: vec![IntervalSet::new(); num_cloud],
            edge_dead_from: vec![None; num_edge],
            cloud_dead_from: vec![None; num_cloud],
            link: vec![Vec::new(); num_edge],
        }
    }

    /// Number of edge servers the plan covers.
    pub fn num_edges(&self) -> usize {
        self.edge_down.len()
    }

    /// Number of cloud processors the plan covers.
    pub fn num_clouds(&self) -> usize {
        self.cloud_down.len()
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.total_windows() == 0
    }

    /// Total number of fault windows (unit crashes + link windows) — the
    /// quantity the engine's automatic event cap scales with.
    pub fn total_windows(&self) -> usize {
        self.edge_down.iter().map(IntervalSet::len).sum::<usize>()
            + self.cloud_down.iter().map(IntervalSet::len).sum::<usize>()
            + self.link.iter().map(Vec::len).sum::<usize>()
            + self.edge_dead_from.iter().flatten().count()
            + self.cloud_dead_from.iter().flatten().count()
    }

    /// Marks edge `j` as permanently down from `t` on.
    pub fn set_edge_dead_from(&mut self, j: usize, t: Time) {
        self.edge_dead_from[j] = Some(t);
    }

    /// Marks cloud `k` as permanently down from `t` on.
    pub fn set_cloud_dead_from(&mut self, k: usize, t: Time) {
        self.cloud_dead_from[k] = Some(t);
    }

    /// Adds a crash window for edge `j`; panics on overlap with an
    /// existing window of the same edge.
    pub fn add_edge_down(&mut self, j: usize, window: Interval) {
        self.edge_down[j]
            .insert(window)
            .unwrap_or_else(|c| panic!("edge {j}: window {window:?} overlaps {c:?}"));
    }

    /// Adds a crash window for cloud `k`; panics on overlap.
    pub fn add_cloud_down(&mut self, k: usize, window: Interval) {
        self.cloud_down[k]
            .insert(window)
            .unwrap_or_else(|c| panic!("cloud {k}: window {window:?} overlaps {c:?}"));
    }

    /// Adds a link window for edge `j`; panics on overlap or a factor
    /// outside `[0, 1]`.
    pub fn add_link_window(&mut self, j: usize, window: LinkWindow) {
        let w = LinkWindow::new(window.window, window.factor);
        assert!(
            !self.link[j].iter().any(|x| x.window.overlaps(&w.window)),
            "link {j}: window {:?} overlaps an existing one",
            w.window
        );
        if !w.window.is_empty() {
            self.link[j].push(w);
            self.link[j].sort_by_key(|a| a.window.start());
        }
    }

    /// True when edge `j` is down at `t` (windows are half-open, so a unit
    /// is back up exactly at its recovery instant).
    pub fn edge_down_at(&self, j: usize, t: Time) -> bool {
        self.edge_dead_from[j].is_some_and(|d| t >= d)
            || self.edge_down[j].iter().any(|w| w.contains(t))
    }

    /// True when cloud `k` is down at `t`.
    pub fn cloud_down_at(&self, k: usize, t: Time) -> bool {
        self.cloud_dead_from[k].is_some_and(|d| t >= d)
            || self.cloud_down[k].iter().any(|w| w.contains(t))
    }

    /// Capacity factor of edge `j`'s link at `t` (`1.0` when healthy).
    pub fn link_factor_at(&self, j: usize, t: Time) -> f64 {
        self.link[j]
            .iter()
            .find(|w| w.window.contains(t))
            .map_or(1.0, |w| w.factor)
    }

    /// Crash windows of edge `j`.
    pub fn edge_windows(&self, j: usize) -> impl Iterator<Item = &Interval> {
        self.edge_down[j].iter()
    }

    /// Crash windows of cloud `k`.
    pub fn cloud_windows(&self, k: usize) -> impl Iterator<Item = &Interval> {
        self.cloud_down[k].iter()
    }

    /// Link windows of edge `j`, sorted by start.
    pub fn link_windows(&self, j: usize) -> &[LinkWindow] {
        &self.link[j]
    }

    /// Every availability boundary in the plan, for event-queue priming.
    /// Each crash window yields a down and an up boundary; each link
    /// window yields two change boundaries.
    pub fn boundaries(&self) -> Vec<FaultBoundary> {
        let mut out = Vec::with_capacity(2 * self.total_windows());
        for (j, set) in self.edge_down.iter().enumerate() {
            for w in set.iter() {
                out.push(FaultBoundary::EdgeDown(j, w.start()));
                out.push(FaultBoundary::EdgeUp(j, w.end()));
            }
            if let Some(d) = self.edge_dead_from[j] {
                // Fail-stop: a down boundary with no matching recovery.
                out.push(FaultBoundary::EdgeDown(j, d));
            }
        }
        for (k, set) in self.cloud_down.iter().enumerate() {
            for w in set.iter() {
                out.push(FaultBoundary::CloudDown(k, w.start()));
                out.push(FaultBoundary::CloudUp(k, w.end()));
            }
            if let Some(d) = self.cloud_dead_from[k] {
                out.push(FaultBoundary::CloudDown(k, d));
            }
        }
        for (j, windows) in self.link.iter().enumerate() {
            for w in windows {
                out.push(FaultBoundary::LinkChange(j, w.window.start()));
                out.push(FaultBoundary::LinkChange(j, w.window.end()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::from_secs(a, b)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::empty(3, 2);
        assert!(plan.is_empty());
        assert_eq!(plan.num_edges(), 3);
        assert_eq!(plan.num_clouds(), 2);
        assert_eq!(plan.total_windows(), 0);
        assert!(plan.boundaries().is_empty());
        assert!(!plan.edge_down_at(0, Time::new(5.0)));
        assert!(!plan.cloud_down_at(1, Time::new(5.0)));
        assert_eq!(plan.link_factor_at(2, Time::new(5.0)), 1.0);
    }

    #[test]
    fn none_config_compiles_to_empty_plan() {
        let cfg = FaultConfig::none(2, 3);
        let plan = cfg.compile(42, Time::new(1000.0));
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::empty(2, 3));
    }

    #[test]
    fn compile_is_a_pure_function_of_the_seed() {
        let cfg = FaultConfig::uniform_exponential(3, 2, 50.0, 5.0);
        let h = Time::new(2000.0);
        let a = cfg.compile(7, h);
        let b = cfg.compile(7, h);
        assert_eq!(a, b, "same seed must compile bit-identically");
        let c = cfg.compile(8, h);
        assert_ne!(a, c, "different seed must move the windows");
        assert!(!a.is_empty(), "horizon ≫ MTBF must produce failures");
    }

    #[test]
    fn per_unit_streams_are_independent() {
        // Adding a cloud must not change the edges' windows.
        let small = FaultConfig::uniform_exponential(2, 1, 50.0, 5.0);
        let large = FaultConfig::uniform_exponential(2, 4, 50.0, 5.0);
        let h = Time::new(1000.0);
        let a = small.compile(9, h);
        let b = large.compile(9, h);
        for j in 0..2 {
            assert_eq!(
                a.edge_windows(j).collect::<Vec<_>>(),
                b.edge_windows(j).collect::<Vec<_>>()
            );
        }
        assert_eq!(
            a.cloud_windows(0).collect::<Vec<_>>(),
            b.cloud_windows(0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn exponential_downtime_fraction_is_plausible() {
        // MTBF 40, MTTR 10 → expected unavailability 10/(40+10) = 20%.
        // Over a long horizon the sampled fraction must land in a loose
        // band around it (deterministic given the seed — not flaky).
        let cfg = FaultConfig::uniform_exponential(1, 0, 40.0, 10.0);
        let h = 200_000.0;
        let plan = cfg.compile(1234, Time::new(h));
        let down: f64 = plan
            .edge_windows(0)
            .map(|w| w.length().seconds())
            .sum::<f64>();
        let frac = down / h;
        assert!(
            (0.1..0.3).contains(&frac),
            "downtime fraction {frac} implausible for MTTR/(MTBF+MTTR) = 0.2"
        );
    }

    #[test]
    fn sampling_stops_at_the_horizon() {
        let cfg = FaultConfig::uniform_exponential(1, 1, 10.0, 2.0);
        let plan = cfg.compile(5, Time::new(100.0));
        for w in plan.edge_windows(0).chain(plan.cloud_windows(0)) {
            assert!(
                w.start().seconds() < 100.0,
                "window {w:?} starts past horizon"
            );
        }
    }

    #[test]
    fn trace_model_passes_through() {
        let mut cfg = FaultConfig::none(2, 1);
        cfg.edges[1] = UnitFaultModel::Trace(vec![iv(3.0, 5.0), iv(8.0, 9.0)]);
        cfg.clouds[0] = UnitFaultModel::Trace(vec![iv(0.0, 1e9)]); // permanently down
        let plan = cfg.compile(0, Time::new(10.0));
        assert!(!plan.edge_down_at(0, Time::new(4.0)));
        assert!(plan.edge_down_at(1, Time::new(4.0)));
        assert!(!plan.edge_down_at(1, Time::new(5.0)), "half-open recovery");
        assert!(plan.edge_down_at(1, Time::new(8.5)));
        assert!(plan.cloud_down_at(0, Time::new(123456.0)));
        assert_eq!(plan.total_windows(), 3);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_trace_rejected() {
        let mut cfg = FaultConfig::none(1, 0);
        cfg.edges[0] = UnitFaultModel::Trace(vec![iv(0.0, 5.0), iv(3.0, 6.0)]);
        let _ = cfg.compile(0, Time::new(10.0));
    }

    #[test]
    fn link_windows_report_factors() {
        let mut cfg = FaultConfig::none(1, 1);
        cfg.links[0] = LinkFaultModel::Windows(vec![
            LinkWindow::new(iv(2.0, 4.0), 0.0),
            LinkWindow::new(iv(6.0, 7.0), 0.25),
        ]);
        let plan = cfg.compile(0, Time::new(10.0));
        assert_eq!(plan.link_factor_at(0, Time::new(1.0)), 1.0);
        assert_eq!(plan.link_factor_at(0, Time::new(2.0)), 0.0);
        assert_eq!(plan.link_factor_at(0, Time::new(4.0)), 1.0);
        assert_eq!(plan.link_factor_at(0, Time::new(6.5)), 0.25);
        assert_eq!(plan.total_windows(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn boundaries_enumerate_every_window_twice() {
        let mut plan = FaultPlan::empty(2, 1);
        plan.add_edge_down(0, iv(1.0, 2.0));
        plan.add_cloud_down(0, iv(3.0, 4.0));
        plan.add_link_window(1, LinkWindow::new(iv(5.0, 6.0), 0.5));
        let bs = plan.boundaries();
        assert_eq!(bs.len(), 6);
        assert!(bs.contains(&FaultBoundary::EdgeDown(0, Time::new(1.0))));
        assert!(bs.contains(&FaultBoundary::EdgeUp(0, Time::new(2.0))));
        assert!(bs.contains(&FaultBoundary::CloudDown(0, Time::new(3.0))));
        assert!(bs.contains(&FaultBoundary::CloudUp(0, Time::new(4.0))));
        assert!(bs.contains(&FaultBoundary::LinkChange(1, Time::new(5.0))));
        assert!(bs.contains(&FaultBoundary::LinkChange(1, Time::new(6.0))));
    }

    #[test]
    fn is_recovery_classifies_boundaries() {
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, iv(1.0, 2.0));
        plan.add_cloud_down(0, iv(3.0, 4.0));
        plan.add_link_window(0, LinkWindow::new(iv(5.0, 6.0), 0.5));
        let bs = plan.boundaries();
        let recoveries: Vec<_> = bs.iter().filter(|b| b.is_recovery()).collect();
        assert_eq!(
            recoveries,
            vec![
                &FaultBoundary::EdgeUp(0, Time::new(2.0)),
                &FaultBoundary::CloudUp(0, Time::new(4.0)),
            ],
            "only unit recoveries qualify — link-change ends do not"
        );
        let times: Vec<f64> = bs.iter().map(|b| b.time().seconds()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn fail_stop_is_down_forever() {
        let mut cfg = FaultConfig::none(1, 1);
        cfg.edges[0] = UnitFaultModel::FailStop(5.0);
        let plan = cfg.compile(0, Time::new(100.0));
        assert!(!plan.edge_down_at(0, Time::new(4.9)));
        assert!(plan.edge_down_at(0, Time::new(5.0)));
        assert!(plan.edge_down_at(0, Time::new(1e12)));
        assert_eq!(plan.total_windows(), 1);
        // Exactly one boundary: the crash, with no recovery.
        assert_eq!(
            plan.boundaries(),
            vec![FaultBoundary::EdgeDown(0, Time::new(5.0))]
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn link_factor_out_of_range_rejected() {
        let _ = LinkWindow::new(iv(0.0, 1.0), 1.5);
    }

    #[test]
    fn uniform_constructor_shapes() {
        let cfg = FaultConfig::uniform_exponential(3, 2, 100.0, 10.0);
        assert_eq!(cfg.edges.len(), 3);
        assert_eq!(cfg.clouds.len(), 2);
        assert_eq!(cfg.links.len(), 3);
        assert!(cfg.links.iter().all(|l| matches!(l, LinkFaultModel::None)));
    }
}
