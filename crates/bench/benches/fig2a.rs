//! Figure 2(a) bench — time to evaluate one random-CCR instance per
//! heuristic across the CCR sweep (the unit of work behind each point of
//! the figure; §VI-B reports execution times are flat in the CCR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmsec_bench::run_policy;
use mmsec_core::PolicyKind;
use mmsec_platform::EngineOptions;
use mmsec_workload::RandomCcrConfig;

fn bench_fig2a_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a/instance_eval");
    group.sample_size(10);
    for ccr in [0.1f64, 1.0, 10.0] {
        let cfg = RandomCcrConfig {
            n: 200,
            ccr,
            load: 0.05,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(1);
        for kind in PolicyKind::PAPER {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("ccr{ccr}")),
                &inst,
                |b, inst| {
                    b.iter(|| run_policy(inst, kind, 3, EngineOptions::default(), false));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2a_unit);
criterion_main!(benches);
