//! E6 — scheduling time of each heuristic (criterion version of the
//! §VI-B "Execution times" discussion): wall-clock per simulated instance,
//! per policy, as a function of n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmsec_bench::run_policy;
use mmsec_core::PolicyKind;
use mmsec_platform::EngineOptions;
use mmsec_workload::RandomCcrConfig;

fn bench_policies_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_time/policy_vs_n");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let cfg = RandomCcrConfig {
            n,
            ccr: 1.0,
            load: 0.05,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(42);
        for kind in PolicyKind::PAPER {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &inst, |b, inst| {
                b.iter(|| run_policy(inst, kind, 7, EngineOptions::default(), false));
            });
        }
    }
    group.finish();
}

fn bench_policies_vs_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_time/policy_vs_load");
    group.sample_size(10);
    for load in [0.05f64, 0.5, 2.0] {
        let cfg = RandomCcrConfig {
            n: 200,
            ccr: 1.0,
            load,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(42);
        // Edge-Only is omitted at high load (as in the paper: too costly).
        for kind in PolicyKind::CLOUD_USING {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("load{load}")),
                &inst,
                |b, inst| {
                    b.iter(|| run_policy(inst, kind, 7, EngineOptions::default(), false));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies_vs_n, bench_policies_vs_load);
criterion_main!(benches);
