//! Substrate micro-benchmarks: event queue, interval sets, projection,
//! instance generation — the building blocks whose cost bounds the whole
//! simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mmsec_core::PolicyKind;
use mmsec_platform::obs::{FlightRecorder, NullObserver, PhaseProfiler};
use mmsec_platform::projection::Projection;
use mmsec_platform::{Instance, JobArena, JobState, PendingSet, SimView, Simulation};
use mmsec_sim::{EventQueue, Interval, IntervalSet, Time};
use mmsec_workload::{KangConfig, RandomCcrConfig};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("micro/event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                // Pseudo-shuffled times.
                let t = ((i * 2654435761) % 10_000) as f64;
                q.push(Time::new(t), 0, i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
}

fn bench_interval_set(c: &mut Criterion) {
    c.bench_function("micro/interval_set_insert_1k_disjoint", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for i in 0..1000 {
                let start = i as f64 * 2.0;
                s.insert(Interval::from_secs(start, start + 1.0)).unwrap();
            }
            s.total_length()
        });
    });
    c.bench_function("micro/interval_set_insert_1k_merging", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for i in 0..1000 {
                let start = i as f64;
                s.insert(Interval::from_secs(start, start + 1.0)).unwrap();
            }
            s.len()
        });
    });
}

fn bench_projection(c: &mut Criterion) {
    let cfg = RandomCcrConfig {
        n: 200,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(5);
    let states: Vec<JobState> = (0..inst.num_jobs())
        .map(|_| JobState {
            released: true,
            ..JobState::default()
        })
        .collect();
    let arena = JobArena::from_states(&inst, &states);
    let pending = PendingSet::from_states(&inst, &states);
    c.bench_function("micro/projection_place_200_jobs", |b| {
        b.iter_batched(
            || Projection::new(&inst.spec, Time::ZERO),
            |mut proj| {
                let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
                for (id, job) in inst.iter_jobs() {
                    let st = &view.state(id);
                    let (t, _) = proj.best_target(job, st, view.spec(), view.now);
                    proj.place(job, st, t, view.spec(), view.now);
                }
                proj
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("micro/generate_random_ccr_1k", |b| {
        let cfg = RandomCcrConfig {
            n: 1000,
            ..RandomCcrConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            cfg.generate(seed)
        });
    });
    c.bench_function("micro/generate_kang_1k", |b| {
        let cfg = KangConfig {
            n: 1000,
            ..KangConfig::default()
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            cfg.generate(seed)
        });
    });
}

/// Observer-dispatch overhead: the same simulation with no observer at
/// all (the default path) versus a [`NullObserver`] (pays the per-event
/// branch + virtual dispatch and nothing else), a [`PhaseProfiler`]
/// (clock reads + histogram inserts per engine step), and a
/// [`FlightRecorder`] (one ring write per event). The null case must be
/// indistinguishable from the bare run — the observability layer's
/// zero-overhead claim — and the other two are budgeted by the
/// `cargo xtask obs-overhead` CI gate.
fn bench_observer_overhead(c: &mut Criterion) {
    let cfg = RandomCcrConfig {
        n: 200,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(5);
    c.bench_function("micro/simulate_200_no_observer", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    c.bench_function("micro/simulate_200_null_observer", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            let mut obs = NullObserver;
            Simulation::of(&inst)
                .policy(policy.as_mut())
                .observer(&mut obs)
                .run()
                .unwrap()
        });
    });
    c.bench_function("micro/simulate_200_profiler", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            let mut prof = PhaseProfiler::new();
            Simulation::of(&inst)
                .policy(policy.as_mut())
                .profiler(&mut prof)
                .run()
                .unwrap()
        });
    });
    c.bench_function("micro/simulate_200_flight", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            let mut flight = FlightRecorder::default();
            Simulation::of(&inst)
                .policy(policy.as_mut())
                .observer(&mut flight)
                .run()
                .unwrap()
        });
    });
}

/// High-n decide-path cost: the incremental pending-set and the reusable
/// directive buffer matter most when each event sees many pending jobs.
fn bench_decide_path_high_n(c: &mut Criterion) {
    let cfg = RandomCcrConfig {
        n: 1000,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(5);
    let mut group = c.benchmark_group("micro/high_n");
    group.sample_size(10);
    group.bench_function("simulate_1000_srpt", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    group.bench_function("simulate_1000_fcfs", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Fcfs.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    // The same workload on a 3-tier continuum: prices the tier-path
    // comm scaling (path factors ≠ 1.0 everywhere) against the frozen
    // flat `simulate_1000_srpt` run above.
    let spec = &inst.spec;
    let mut b = mmsec_platform::PlatformSpec::builder()
        .edges(spec.edges().map(|j| spec.edge_speed(j)))
        .tier(1.0, 1.0)
        .tier(1.5, 2.0)
        .tier(2.0, 3.0);
    for (i, k) in spec.clouds().enumerate() {
        b = b.cloud_at(spec.cloud_speed(k), 1 + i % 3);
    }
    let tiered = Instance::new(b.build(), inst.jobs.clone()).unwrap();
    group.bench_function("simulate_1000_srpt_tiered", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            Simulation::of(&tiered)
                .policy(policy.as_mut())
                .run()
                .unwrap()
        });
    });
    // Mid-run unit churn through the session mutation API: a fast edge
    // and a cloud join at ¼ horizon, get retuned at ½, and leave at ¾.
    // Each version bump forces every policy to rebuild its
    // platform-sized caches, so this prices the dynamic-platform path
    // against the frozen `simulate_1000_srpt` run above.
    let horizon = inst
        .iter_jobs()
        .map(|(_, j)| j.release.seconds())
        .fold(0.0_f64, f64::max);
    group.bench_function("simulate_1000_srpt_elastic", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            let mut session = Simulation::of(&inst).policy(policy.as_mut()).session();
            session.run_until(Time::new(0.25 * horizon)).unwrap();
            let e = session.add_edge(0.9).unwrap();
            let k = session.add_cloud(2.0).unwrap();
            session.run_until(Time::new(0.5 * horizon)).unwrap();
            session.set_edge_speed(e, 0.4).unwrap();
            session.set_link(e, 0.5).unwrap();
            session.run_until(Time::new(0.75 * horizon)).unwrap();
            session.remove_edge(e).unwrap();
            session.remove_cloud(k).unwrap();
            session.drain().unwrap();
            session.snapshot().completed
        });
    });
    // n=5000: only viable at all because decision-epoch gating and the
    // incremental policy state cap per-event cost; sized to stay inside
    // the CI smoke budget.
    let cfg = RandomCcrConfig {
        n: 5000,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(5);
    group.bench_function("simulate_5000_srpt", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    group.bench_function("simulate_5000_fcfs", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Fcfs.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    // n=50_000: an order of magnitude past the CI smoke sizes, where the
    // calendar queue's O(1) pops and the arena's flat columns are the
    // difference between seconds and minutes. Sample count is minimal —
    // the point is a wall guarding against superlinear regressions, not
    // a tight mean.
    let cfg = RandomCcrConfig {
        n: 50_000,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(5);
    group.bench_function("simulate_50000_srpt", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Srpt.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    group.bench_function("simulate_50000_fcfs", |b| {
        b.iter(|| {
            let mut policy = PolicyKind::Fcfs.build(1);
            Simulation::of(&inst).policy(policy.as_mut()).run().unwrap()
        });
    });
    group.finish();
}

/// Telemetry overhead at scale: the profiler and flight-recorder
/// variants of the `high_n` SRPT runs, so the per-step clock reads and
/// per-event ring writes are measured where they are most frequent
/// (EXPERIMENTS.md quotes these against their bare counterparts).
fn bench_telemetry_high_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/high_n");
    group.sample_size(10);
    for n in [1000usize, 5000] {
        let cfg = RandomCcrConfig {
            n,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(5);
        group.bench_function(format!("simulate_{n}_srpt_profiler"), |b| {
            b.iter(|| {
                let mut policy = PolicyKind::Srpt.build(1);
                let mut prof = PhaseProfiler::new();
                Simulation::of(&inst)
                    .policy(policy.as_mut())
                    .profiler(&mut prof)
                    .run()
                    .unwrap()
            });
        });
        group.bench_function(format!("simulate_{n}_srpt_flight"), |b| {
            b.iter(|| {
                let mut policy = PolicyKind::Srpt.build(1);
                let mut flight = FlightRecorder::default();
                Simulation::of(&inst)
                    .policy(policy.as_mut())
                    .observer(&mut flight)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_interval_set,
    bench_projection,
    bench_generators,
    bench_observer_overhead,
    bench_decide_path_high_n,
    bench_telemetry_high_n
);
criterion_main!(benches);
