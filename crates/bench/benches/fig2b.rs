//! Figure 2(b) bench — time to evaluate one random instance per heuristic
//! across the load sweep (the paper reports Greedy's execution time
//! "drastically increases with the load" — this bench is where that shows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmsec_bench::run_policy;
use mmsec_core::PolicyKind;
use mmsec_platform::EngineOptions;
use mmsec_workload::RandomCcrConfig;

fn bench_fig2b_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b/instance_eval");
    group.sample_size(10);
    for load in [0.05f64, 0.5, 1.0, 2.0] {
        let cfg = RandomCcrConfig {
            n: 200,
            ccr: 1.0,
            load,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(1);
        for kind in PolicyKind::CLOUD_USING {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("load{load}")),
                &inst,
                |b, inst| {
                    b.iter(|| run_policy(inst, kind, 3, EngineOptions::default(), false));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2b_unit);
criterion_main!(benches);
