//! Figures 2(c)/2(d) bench — time to evaluate one Kang instance per
//! heuristic, for the 20-edge and 100-edge platforms (the paper reports
//! much higher execution times with 100 edge units).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmsec_bench::run_policy;
use mmsec_core::PolicyKind;
use mmsec_platform::EngineOptions;
use mmsec_workload::KangConfig;

fn bench_kang_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("kang/instance_eval");
    group.sample_size(10);
    for num_edge in [20usize, 100] {
        let cfg = KangConfig {
            num_edge,
            n: 200,
            ..KangConfig::default()
        };
        let inst = cfg.generate(1);
        for kind in PolicyKind::PAPER {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{num_edge}edges")),
                &inst,
                |b, inst| {
                    b.iter(|| run_policy(inst, kind, 3, EngineOptions::default(), false));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kang_unit);
criterion_main!(benches);
