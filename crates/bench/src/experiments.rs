//! The experiment suite: one function per paper figure/table (§VI) plus
//! the ablations and extensions of DESIGN.md.

use crate::run::evaluate_point;
use crate::scale::Scale;
use mmsec_analysis::table::fmt_num;
use mmsec_analysis::Table;
use mmsec_core::PolicyKind;
use mmsec_platform::{EngineOptions, Simulation, StretchReport};
use mmsec_workload::{KangConfig, RandomCcrConfig};

/// A regenerated figure/table.
pub struct Figure {
    /// Experiment id (DESIGN.md index).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The data series.
    pub table: Table,
    /// Interpretation notes printed under the table.
    pub notes: Vec<String>,
}

impl Figure {
    /// Renders the figure as markdown (table + notes).
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### {} — {}\n\n{}",
            self.id,
            self.title,
            self.table.to_markdown()
        );
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }
}

/// The CCR sweep of Figure 2(a).
pub const CCR_SWEEP: [f64; 7] = [0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// The load sweep of Figure 2(b).
pub const LOAD_SWEEP: [f64; 7] = [0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0];

fn policy_headers(policies: &[PolicyKind], first: &str) -> Vec<String> {
    let mut h = vec![first.to_string()];
    h.extend(policies.iter().map(|p| p.name().to_string()));
    h
}

/// Figure 2(a): max-stretch vs CCR on random instances, all four paper
/// heuristics (Edge-Only included).
pub fn fig2a(scale: &Scale, seed: u64) -> Figure {
    let policies = PolicyKind::PAPER;
    let mut table = Table::new(policy_headers(&policies, "ccr"));
    for (pi, &ccr) in CCR_SWEEP.iter().enumerate() {
        let cfg = RandomCcrConfig {
            n: scale.n_random,
            ccr,
            ..RandomCcrConfig::default()
        };
        let point = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ (pi as u64),
            EngineOptions::default(),
            scale.validate,
        );
        let mut row = vec![fmt_num(ccr)];
        row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
        table.push_row(row);
    }
    Figure {
        id: "E2/fig2a",
        title: format!(
            "max-stretch vs CCR (random, n={}, load 0.05, {} reps)",
            scale.n_random, scale.reps
        ),
        table,
        notes: vec![
            "Expected shape: SSF-EDF ≤ SRPT ≪ Greedy at low CCR; Edge-Only far worse at \
             low CCR, converging as CCR grows (the cloud stops paying off)."
                .into(),
        ],
    }
}

/// Figure 2(b): max-stretch vs load at CCR = 1 (Edge-Only omitted, as in
/// the paper: it is off-scale under load).
pub fn fig2b(scale: &Scale, seed: u64) -> Figure {
    let policies = PolicyKind::CLOUD_USING;
    let mut table = Table::new(policy_headers(&policies, "load"));
    for (pi, &load) in LOAD_SWEEP.iter().enumerate() {
        let cfg = RandomCcrConfig {
            n: scale.n_random,
            ccr: 1.0,
            load,
            ..RandomCcrConfig::default()
        };
        let point = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ (0x2b00 + pi as u64),
            EngineOptions::default(),
            scale.validate,
        );
        let mut row = vec![fmt_num(load)];
        row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
        table.push_row(row);
    }
    Figure {
        id: "E3/fig2b",
        title: format!(
            "max-stretch vs load (random, CCR 1, n={}, {} reps)",
            scale.n_random, scale.reps
        ),
        table,
        notes: vec![
            "Expected shape: SRPT and Greedy degrade sharply with load; SSF-EDF stays \
             low; Greedy can overtake SRPT at high load."
                .into(),
        ],
    }
}

fn kang_figure(id: &'static str, num_edge: usize, scale: &Scale, seed: u64) -> Figure {
    let policies = PolicyKind::PAPER;
    let mut table = Table::new(policy_headers(&policies, "n"));
    for (pi, &n) in scale.kang_ns.iter().enumerate() {
        let cfg = KangConfig {
            num_edge,
            n,
            ..KangConfig::default()
        };
        let point = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ kang_marker(pi, num_edge),
            EngineOptions::default(),
            scale.validate,
        );
        let mut row = vec![n.to_string()];
        row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
        table.push_row(row);
    }
    Figure {
        id,
        title: format!(
            "max-stretch vs n (Kang, {num_edge} edges, 10 clouds, {} reps)",
            scale.reps
        ),
        table,
        notes: vec![
            "Expected shape: SSF-EDF best, SRPT close; Edge-Only cannot keep up as n \
             grows; with many edges Greedy closes the gap."
                .into(),
        ],
    }
}

/// Figure 2(c): Kang instances, 20 edge units.
pub fn fig2c(scale: &Scale, seed: u64) -> Figure {
    kang_figure("E4/fig2c", 20, scale, seed)
}

/// Figure 2(d): Kang instances, 100 edge units.
pub fn fig2d(scale: &Scale, seed: u64) -> Figure {
    kang_figure("E5/fig2d", 100, scale, seed)
}

/// E6: scheduling (decide) time per policy vs n and load (§VI-B
/// "Execution times" — the companion-report table).
pub fn exec_times(scale: &Scale, seed: u64) -> Figure {
    let policies = PolicyKind::PAPER;
    let mut headers = vec!["n".to_string(), "load".to_string()];
    headers.extend(policies.iter().map(|p| format!("{p} [ms]")));
    let mut table = Table::new(headers);
    let ns = [scale.n_random / 2, scale.n_random];
    for &n in &ns {
        for &load in &[0.05, 0.5] {
            let cfg = RandomCcrConfig {
                n,
                ccr: 1.0,
                load,
                ..RandomCcrConfig::default()
            };
            let point = evaluate_point(
                |s| cfg.generate(s),
                &policies,
                scale.reps.min(10),
                scale.threads,
                seed ^ (0xE6 + n as u64),
                EngineOptions::default(),
                false,
            );
            let mut row = vec![n.to_string(), fmt_num(load)];
            row.extend(point.decide_ms.iter().map(|s| fmt_num(s.mean)));
            table.push_row(row);
        }
    }
    Figure {
        id: "E6/exec-times",
        title: "scheduling time per heuristic [ms per instance]".into(),
        table,
        notes: vec![
            "Expected shape: SRPT fastest; SSF-EDF and Edge-Only slowest; times grow \
             with n and with load."
                .into(),
        ],
    }
}

/// A1: SSF-EDF α sweep.
pub fn ablation_alpha(scale: &Scale, seed: u64) -> Figure {
    let alphas = [0.5, 0.8, 1.0, 1.5, 2.0];
    let mut table = Table::new(["alpha", "max-stretch", "mean-stretch"]);
    let cfg = RandomCcrConfig {
        n: scale.n_random,
        ccr: 1.0,
        load: 0.5,
        ..RandomCcrConfig::default()
    };
    for &alpha in &alphas {
        let values: Vec<(f64, f64)> = mmsec_analysis::run_indexed(scale.reps, scale.threads, |i| {
            let inst = cfg.generate(mmsec_sim::seed::derive(seed, "alpha", i as u64));
            let mut pol = mmsec_core::SsfEdf::with_params(alpha, 1e-3);
            let out = Simulation::of(&inst)
                .policy(&mut pol)
                .run()
                .expect("ssf-edf completes");
            let r = StretchReport::new(&inst, &out.schedule);
            (r.max_stretch, r.mean_stretch)
        });
        let maxes: Vec<f64> = values.iter().map(|v| v.0).collect();
        let means: Vec<f64> = values.iter().map(|v| v.1).collect();
        table.push_row([
            fmt_num(alpha),
            fmt_num(mmsec_analysis::Summary::of(&maxes).mean),
            fmt_num(mmsec_analysis::Summary::of(&means).mean),
        ]);
    }
    Figure {
        id: "A1/alpha",
        title: format!(
            "SSF-EDF deadline multiplier α (random, CCR 1, load 0.5, n={}, {} reps)",
            scale.n_random, scale.reps
        ),
        table,
        notes: vec!["α = 1 is the paper's default; both directions should hurt or tie.".into()],
    }
}

/// A2: one-port model vs infinite ports (macro-dataflow) — quantifies the
/// §II claim that communication contention matters.
pub fn ablation_ports(scale: &Scale, seed: u64) -> Figure {
    let policies = [PolicyKind::Srpt, PolicyKind::SsfEdf];
    let mut table = Table::new([
        "ccr".to_string(),
        "srpt 1-port".to_string(),
        "srpt ∞-port".to_string(),
        "ssf-edf 1-port".to_string(),
        "ssf-edf ∞-port".to_string(),
    ]);
    for &ccr in &[0.5, 2.0, 10.0] {
        let cfg = RandomCcrConfig {
            n: scale.n_random,
            ccr,
            load: 0.5,
            ..RandomCcrConfig::default()
        };
        let strict = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xA2,
            EngineOptions::default(),
            scale.validate,
        );
        let loose = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xA2,
            EngineOptions {
                infinite_ports: true,
                ..EngineOptions::default()
            },
            false, // port checks do not apply
        );
        table.push_row([
            fmt_num(ccr),
            fmt_num(strict.max_stretch[0].mean),
            fmt_num(loose.max_stretch[0].mean),
            fmt_num(strict.max_stretch[1].mean),
            fmt_num(loose.max_stretch[1].mean),
        ]);
    }
    Figure {
        id: "A2/ports",
        title: "one-port contention vs macro-dataflow (no port limits)".into(),
        table,
        notes: vec![
            "The macro-dataflow model under-reports stretch at high CCR — ignoring \
             contention makes schedules look better than they could be in reality."
                .into(),
        ],
    }
}

/// A3: preemption / re-execution disabled.
pub fn ablation_preemption(scale: &Scale, seed: u64) -> Figure {
    let policies = [PolicyKind::Srpt, PolicyKind::SsfEdf];
    let variants: [(&str, EngineOptions); 3] = [
        ("paper model", EngineOptions::default()),
        (
            "no re-execution",
            EngineOptions {
                allow_reexecution: false,
                ..EngineOptions::default()
            },
        ),
        (
            "no preemption",
            EngineOptions {
                allow_preemption: false,
                allow_reexecution: false,
                ..EngineOptions::default()
            },
        ),
    ];
    let mut table = Table::new(["variant", "srpt", "ssf-edf"]);
    let cfg = RandomCcrConfig {
        n: scale.n_random,
        ccr: 1.0,
        load: 0.5,
        ..RandomCcrConfig::default()
    };
    for (name, opts) in variants {
        let point = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xA3,
            opts,
            scale.validate,
        );
        table.push_row([
            name.to_string(),
            fmt_num(point.max_stretch[0].mean),
            fmt_num(point.max_stretch[1].mean),
        ]);
    }
    Figure {
        id: "A3/preemption",
        title: "model ablation: preemption and re-execution".into(),
        table,
        notes: vec![
            "The paper's model choices (preemption on, re-execution allowed) should \
             dominate or tie the restricted variants."
                .into(),
        ],
    }
}

/// A4: heterogeneous cloud speeds (the §II "straightforward extension").
pub fn ext_heterogeneous(scale: &Scale, seed: u64) -> Figure {
    let policies = [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf];
    let mut table = Table::new(["cloud", "greedy", "srpt", "ssf-edf"]);
    // Same aggregate cloud speed (20), different shapes.
    let shapes: [(&str, Vec<f64>); 2] = [
        ("homogeneous 20×1.0", vec![1.0; 20]),
        (
            "heterogeneous 10×1.5 + 10×0.5",
            [vec![1.5; 10], vec![0.5; 10]].concat(),
        ),
    ];
    for (name, cloud_speeds) in shapes {
        let base = RandomCcrConfig {
            n: scale.n_random,
            ccr: 1.0,
            load: 0.5,
            ..RandomCcrConfig::default()
        };
        let make = |s: u64| {
            let inst = base.generate(s);
            // Re-house the jobs on the heterogeneous platform.
            let mut edge_speeds = Vec::new();
            for j in inst.spec.edges() {
                edge_speeds.push(inst.spec.edge_speed(j));
            }
            let spec = mmsec_platform::PlatformSpec::builder()
                .edges(edge_speeds)
                .clouds(cloud_speeds.clone())
                .build();
            mmsec_platform::Instance::new(spec, inst.jobs).expect("valid")
        };
        let point = evaluate_point(
            make,
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xA4,
            EngineOptions::default(),
            scale.validate,
        );
        table.push_row([
            name.to_string(),
            fmt_num(point.max_stretch[0].mean),
            fmt_num(point.max_stretch[1].mean),
            fmt_num(point.max_stretch[2].mean),
        ]);
    }
    Figure {
        id: "A4/heterogeneous-cloud",
        title: "heterogeneous cloud speeds at equal aggregate capacity".into(),
        table,
        notes: vec!["All heuristics handle per-processor speeds transparently.".into()],
    }
}

/// A5: cloud availability windows (the §VII future-work extension).
pub fn ext_windows(scale: &Scale, seed: u64) -> Figure {
    use mmsec_platform::CloudId;
    use mmsec_sim::Interval;
    let policies = [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf];
    let mut table = Table::new(["availability", "greedy", "srpt", "ssf-edf"]);
    for (name, blocked_fraction) in [
        ("always available", 0.0),
        ("half the clouds blocked 50%", 0.5),
    ] {
        let base = RandomCcrConfig {
            n: scale.n_random,
            ccr: 1.0,
            load: 0.5,
            ..RandomCcrConfig::default()
        };
        let make = move |s: u64| {
            let inst = base.generate(s);
            if blocked_fraction == 0.0 {
                return inst;
            }
            // Periodic unavailability on every second cloud processor:
            // windows of length L every 2L across the busy horizon.
            let horizon = inst
                .jobs
                .iter()
                .map(|j| j.release.seconds())
                .fold(0.0f64, f64::max)
                * 1.5
                + 100.0;
            let len = 50.0;
            let mut spec = inst.spec.clone();
            for k in 0..spec.num_cloud() {
                if k % 2 == 1 {
                    let mut windows = Vec::new();
                    let mut t = len;
                    while t < horizon {
                        windows.push(Interval::from_secs(t, t + len));
                        t += 2.0 * len;
                    }
                    spec = spec.with_cloud_unavailability(CloudId(k), &windows);
                }
            }
            mmsec_platform::Instance::new(spec, inst.jobs).expect("valid")
        };
        let point = evaluate_point(
            make,
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xA5,
            EngineOptions::default(),
            scale.validate,
        );
        table.push_row([
            name.to_string(),
            fmt_num(point.max_stretch[0].mean),
            fmt_num(point.max_stretch[1].mean),
            fmt_num(point.max_stretch[2].mean),
        ]);
    }
    Figure {
        id: "A5/availability-windows",
        title: "cloud processors with periodic unavailability (§VII extension)".into(),
        table,
        notes: vec![
            "Stretches degrade gracefully when half the cloud is periodically blocked.".into(),
        ],
    }
}

/// MTBF sweep of the robustness experiment (seconds per unit;
/// `f64::INFINITY` is the fault-free reference point).
pub const MTBF_SWEEP: [f64; 5] = [f64::INFINITY, 800.0, 400.0, 200.0, 100.0];

/// Mean time to repair used throughout the robustness experiment.
pub const FAULT_MTTR: f64 = 10.0;

/// Sampling horizon for a fault plan on `inst`: past the last release plus
/// a generous multiple of the work-over-capacity lower bound, so failures
/// keep arriving for the whole (fault-extended) run. Windows sampled near
/// the horizon keep their full length, so every crash's recovery fires
/// even when the run overshoots the estimate.
pub fn fault_horizon(inst: &mmsec_platform::Instance) -> mmsec_sim::Time {
    let spec = &inst.spec;
    let volume: f64 = inst.jobs.iter().map(|j| j.up + j.work + j.dn).sum();
    let capacity: f64 = spec.edges().map(|j| spec.edge_speed(j)).sum::<f64>()
        + spec.clouds().map(|k| spec.cloud_speed(k)).sum::<f64>();
    let last_release = inst
        .jobs
        .iter()
        .map(|j| j.release.seconds())
        .fold(0.0f64, f64::max);
    mmsec_sim::Time::new((last_release + 8.0 * volume / capacity).max(1_000.0))
}

/// E-fault: max-stretch (and re-executions) vs failure rate. Every unit —
/// edge and cloud — crashes and recovers under a seeded exponential
/// MTBF/MTTR model; work in flight on a crashed unit is lost and the job
/// restarts from scratch (see `docs/faults.md`). Instance and policy seeds
/// match the fault-free runner, so each row degrades the *same* workloads.
pub fn fault_robustness(scale: &Scale, seed: u64) -> Figure {
    use crate::run::evaluate_point_with_faults;
    use mmsec_platform::FaultConfig;

    let policies = PolicyKind::PAPER;
    let mut headers = policy_headers(&policies, "mtbf");
    headers.extend(policies.iter().map(|p| format!("{}-restarts", p.name())));
    let mut table = Table::new(headers);
    for (pi, &mtbf) in MTBF_SWEEP.iter().enumerate() {
        let cfg = RandomCcrConfig {
            n: scale.n_random,
            ccr: 1.0,
            load: 0.5,
            ..RandomCcrConfig::default()
        };
        let make = |s: u64| cfg.generate(s);
        let base_seed = seed ^ (0xFA00 + pi as u64);
        let point = if mtbf.is_infinite() {
            evaluate_point(
                make,
                &policies,
                scale.reps,
                scale.threads,
                base_seed,
                EngineOptions::default(),
                scale.validate,
            )
        } else {
            evaluate_point_with_faults(
                make,
                |inst, fault_seed| {
                    FaultConfig::uniform_exponential(
                        inst.spec.num_edge(),
                        inst.spec.num_cloud(),
                        mtbf,
                        FAULT_MTTR,
                    )
                    .compile(fault_seed, fault_horizon(inst))
                },
                &policies,
                scale.reps,
                scale.threads,
                base_seed,
                EngineOptions::default(),
                scale.validate,
            )
        };
        let mut row = vec![if mtbf.is_infinite() {
            "inf".to_string()
        } else {
            fmt_num(mtbf)
        }];
        row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
        row.extend(point.restarts.iter().map(|s| fmt_num(s.mean)));
        table.push_row(row);
    }
    Figure {
        id: "E-fault/robustness",
        title: format!(
            "max-stretch vs unit MTBF (random, CCR 1, load 0.5, n={}, MTTR {}, {} reps)",
            scale.n_random, FAULT_MTTR, scale.reps
        ),
        table,
        notes: vec![
            "Expected shape: stretches grow as MTBF shrinks; cloud-using policies degrade \
             more gracefully than Edge-Only (a crashed edge strands its whole queue, while \
             crashed cloud work respreads); restart counts grow roughly linearly in the \
             failure rate."
                .into(),
        ],
    }
}

/// E-elastic: units joining and leaving mid-run through the session
/// platform-mutation API. Four scenarios against the same workloads:
/// a frozen platform (reference), a fast edge + cloud joining at ¼ of
/// the release horizon (`grow`), a native cloud leaving at ¾
/// (`shrink`, killing its in-flight work), and the joined units
/// leaving again at ¾ (`churn`). SRPT and SSF-EDF only: they carry the
/// most platform-sized incremental state, so every version bump
/// exercises their rebuild paths.
pub fn elastic(scale: &Scale, seed: u64) -> Figure {
    use mmsec_platform::CloudId;
    use mmsec_sim::Time;

    let policies = [PolicyKind::Srpt, PolicyKind::SsfEdf];
    // (name, join at ¼ horizon, leave at ¾ horizon)
    let scenarios: [(&str, bool, bool); 4] = [
        ("static", false, false),
        ("grow", true, false),
        ("shrink", false, true),
        ("churn", true, true),
    ];
    let mut headers = policy_headers(&policies, "scenario");
    headers.extend(policies.iter().map(|p| format!("{}-restarts", p.name())));
    let mut table = Table::new(headers);
    for (name, grow, shrink) in scenarios {
        let mut stretches = Vec::new();
        let mut restarts = Vec::new();
        for &policy in &policies {
            let (mut s_sum, mut r_sum) = (0.0_f64, 0.0_f64);
            for rep in 0..scale.reps {
                let cfg = RandomCcrConfig {
                    n: scale.n_random,
                    ccr: 1.0,
                    load: 0.5,
                    ..RandomCcrConfig::default()
                };
                let inst = cfg.generate(seed ^ (0xE1A5 + rep as u64));
                let horizon = inst
                    .iter_jobs()
                    .map(|(_, j)| j.release.seconds())
                    .fold(0.0_f64, f64::max);
                let mut p = policy.build(seed);
                let mut session = Simulation::of(&inst).policy(p.as_mut()).session();
                let mut joined = None;
                if grow {
                    session.run_until(Time::new(0.25 * horizon)).unwrap();
                    let e = session.add_edge(0.5).unwrap();
                    let k = session.add_cloud(1.0).unwrap();
                    joined = Some((e, k));
                }
                if shrink {
                    session.run_until(Time::new(0.75 * horizon)).unwrap();
                    match joined {
                        // Churn: the units that joined at ¼ leave again.
                        Some((e, k)) => {
                            session.remove_cloud(k).unwrap();
                            // The joined edge may still originate
                            // unfinished jobs only if jobs were submitted
                            // to it; preloaded workloads never do.
                            session.remove_edge(e).unwrap();
                        }
                        // Shrink: a native cloud leaves for good.
                        None => {
                            session.remove_cloud(CloudId(0)).unwrap();
                        }
                    }
                }
                session.drain().unwrap();
                let snap = session.snapshot();
                s_sum += snap.max_stretch;
                r_sum += snap.run.restarts as f64;
            }
            stretches.push(s_sum / scale.reps as f64);
            restarts.push(r_sum / scale.reps as f64);
        }
        let mut row = vec![name.to_string()];
        row.extend(stretches.iter().map(|v| fmt_num(*v)));
        row.extend(restarts.iter().map(|v| fmt_num(*v)));
        table.push_row(row);
    }
    Figure {
        id: "E-elastic/dynamic-platform",
        title: format!(
            "max-stretch under mid-run platform churn (random, CCR 1, load 0.5, n={}, {} reps)",
            scale.n_random, scale.reps
        ),
        table,
        notes: vec![
            "Expected shape: growing the platform mid-run helps or is neutral (extra \
             capacity, policies re-target after the version bump); removing a cloud \
             kills its in-flight jobs (restart counts rise) and raises the stretch; \
             churn lands between grow and shrink — the borrowed capacity is repaid \
             at ¾ horizon."
                .into(),
        ],
    }
}

/// E-topology: the same workload re-housed on continuum topologies of
/// increasing depth. Hops price communication additively along the
/// route, so deeper tiers make offloading progressively less attractive
/// — the depth-1 unit-hop row must match the flat row *exactly* (it is
/// the bit-identical special case the `tier_equivalence` proptest pins).
pub fn ext_topology(scale: &Scale, seed: u64) -> Figure {
    let policies = [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf];
    let mut table = Table::new(policy_headers(&policies, "topology"));
    // (name, hop list; empty = flat, tier assignment round-robins from
    // tier 1 upward). Aggregate cloud capacity is identical in all rows.
    let shapes: [(&str, Vec<(f64, f64)>); 4] = [
        ("flat", vec![]),
        ("1 tier, unit hops", vec![(1.0, 1.0)]),
        ("2 tiers", vec![(1.0, 1.0), (1.5, 2.0)]),
        ("3 tiers", vec![(1.0, 1.0), (1.5, 2.0), (2.0, 3.0)]),
    ];
    for (name, hops) in shapes {
        let hops = hops.clone();
        let base = RandomCcrConfig {
            n: scale.n_random,
            ccr: 1.0,
            load: 0.5,
            ..RandomCcrConfig::default()
        };
        let make = |s: u64| {
            let inst = base.generate(s);
            let spec = &inst.spec;
            let mut b = mmsec_platform::PlatformSpec::builder()
                .edges(spec.edges().map(|j| spec.edge_speed(j)));
            if hops.is_empty() {
                b = b.clouds(spec.clouds().map(|k| spec.cloud_speed(k)));
            } else {
                let depth = hops.len();
                for &(u, d) in &hops {
                    b = b.tier(u, d);
                }
                for (i, k) in spec.clouds().enumerate() {
                    b = b.cloud_at(spec.cloud_speed(k), 1 + i % depth);
                }
            }
            mmsec_platform::Instance::new(b.build(), inst.jobs).expect("valid")
        };
        let point = evaluate_point(
            make,
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xE70,
            EngineOptions::default(),
            scale.validate,
        );
        let mut row = vec![name.to_string()];
        row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
        table.push_row(row);
    }
    Figure {
        id: "E-topology/tier-depth",
        title: "max-stretch across continuum depths at equal aggregate capacity".into(),
        table,
        notes: vec![
            "The \"1 tier, unit hops\" row equals \"flat\" exactly: a depth-1 \
             continuum with hop factors (1, 1) is the flat platform, bit for bit."
                .into(),
            "Deeper tiers stretch the comm paths (prefix sums of hop factors), so \
             cloud-leaning policies lose more than edge-leaning ones."
                .into(),
        ],
    }
}

/// E-workload: one platform, three release/size models through the
/// unified [`mmsec_workload::Workload`] API — the paper's uniform draws, a diurnal
/// (sinusoidal NHPP) arrival process, and Pareto heavy-tailed work at
/// the same mean.
pub fn ext_workload(scale: &Scale, seed: u64) -> Figure {
    use mmsec_workload::{ArrivalProcess, Dist, Workload, WorkloadSpec};

    let policies = [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf];
    let mut table = Table::new(policy_headers(&policies, "workload"));
    let platform = mmsec_platform::PlatformSpec::builder()
        .edges(vec![1.0; 10])
        .cloud_pool(10)
        .build();
    // Same mean work (5.5) and load in every row; only the shape moves.
    let rows: [(&str, Dist, ArrivalProcess); 4] = [
        (
            "uniform work, uniform arrivals",
            Dist::uniform(1.0, 10.0),
            ArrivalProcess::Uniform,
        ),
        (
            "exponential work, Poisson arrivals",
            Dist::exponential(5.5),
            ArrivalProcess::Poisson,
        ),
        (
            "Pareto work (α=1.5), Poisson arrivals",
            Dist::pareto_with_mean(5.5, 1.5),
            ArrivalProcess::Poisson,
        ),
        (
            "uniform work, diurnal arrivals",
            Dist::uniform(1.0, 10.0),
            ArrivalProcess::diurnal(),
        ),
    ];
    for (name, work, arrivals) in rows {
        let spec = WorkloadSpec::builder(platform.clone())
            .jobs(scale.n_random)
            .work(work)
            .ccr(0.5)
            .arrivals(arrivals)
            .load(0.5)
            .build();
        let point = evaluate_point(
            |s| spec.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed ^ 0xE71,
            EngineOptions::default(),
            scale.validate,
        );
        let mut row = vec![name.to_string()];
        row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
        table.push_row(row);
    }
    Figure {
        id: "E-workload/generators",
        title: "max-stretch under heavy-tailed sizes and non-stationary arrivals".into(),
        table,
        notes: vec![
            "All rows share the platform, mean work, CCR, and load; only the \
             distribution shape and arrival process change."
                .into(),
            "Heavy tails and diurnal bursts both concentrate release pressure, \
             which is exactly where stretch-aware policies earn their keep."
                .into(),
        ],
    }
}

fn kang_marker(pi: usize, num_edge: usize) -> u64 {
    0x4b00 + (pi as u64) + ((num_edge as u64) << 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            reps: 2,
            n_random: 30,
            kang_ns: vec![12, 24],
            threads: 2,
            validate: true,
        }
    }

    #[test]
    fn fig2a_produces_rows_per_ccr() {
        let fig = fig2a(&tiny(), 1);
        assert_eq!(fig.table.num_rows(), CCR_SWEEP.len());
        assert!(fig.to_markdown().contains("ssf-edf"));
    }

    #[test]
    fn fig2b_produces_rows_per_load() {
        let fig = fig2b(&tiny(), 1);
        assert_eq!(fig.table.num_rows(), LOAD_SWEEP.len());
    }

    #[test]
    fn kang_figures_produce_rows_per_n() {
        let fig = fig2c(&tiny(), 1);
        assert_eq!(fig.table.num_rows(), 2);
        let fig = fig2d(&tiny(), 1);
        assert_eq!(fig.table.num_rows(), 2);
    }

    #[test]
    fn exec_times_runs() {
        let fig = exec_times(&tiny(), 1);
        assert_eq!(fig.table.num_rows(), 4);
    }

    #[test]
    fn fault_robustness_sweeps_mtbf_and_counts_restarts() {
        let fig = fault_robustness(&tiny(), 3);
        assert_eq!(fig.table.num_rows(), MTBF_SWEEP.len());
        let csv = fig.table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Columns: mtbf, one stretch and one restart column per policy.
        assert!(lines[0].starts_with("mtbf,"));
        assert!(lines[0].contains("ssf-edf-restarts"));
        assert!(lines[1].starts_with("inf,"));
        // The harshest failure rate must actually force restarts.
        let last: Vec<&str> = lines.last().unwrap().split(',').collect();
        assert_eq!(last.len(), 1 + 2 * PolicyKind::PAPER.len());
        let total: f64 = last[1 + PolicyKind::PAPER.len()..]
            .iter()
            .map(|v| v.parse::<f64>().unwrap())
            .sum();
        assert!(total > 0.0, "no restarts at MTBF {}: {csv}", MTBF_SWEEP[4]);
    }

    #[test]
    fn ablations_run() {
        assert_eq!(ablation_alpha(&tiny(), 1).table.num_rows(), 5);
        assert_eq!(ablation_ports(&tiny(), 1).table.num_rows(), 3);
        assert_eq!(ablation_preemption(&tiny(), 1).table.num_rows(), 3);
        assert_eq!(ext_heterogeneous(&tiny(), 1).table.num_rows(), 2);
        assert_eq!(ext_windows(&tiny(), 1).table.num_rows(), 2);
    }

    #[test]
    fn topology_depth_one_row_matches_flat_exactly() {
        let fig = ext_topology(&tiny(), 1);
        assert_eq!(fig.table.num_rows(), 4);
        let flat: Vec<String> = fig.table.row(0)[1..].to_vec();
        let unit: Vec<String> = fig.table.row(1)[1..].to_vec();
        assert_eq!(flat, unit, "depth-1 unit-hop continuum must equal flat");
    }

    #[test]
    fn workload_generators_run() {
        assert_eq!(ext_workload(&tiny(), 1).table.num_rows(), 4);
    }
}
