//! Shared trial execution: generate → simulate → validate → measure.

use mmsec_analysis::{run_indexed, Summary};
use mmsec_core::PolicyKind;
use mmsec_platform::obs::json::Json;
use mmsec_platform::obs::{failure_dir, Log2Histogram};
use mmsec_platform::{
    validate_with, EngineError, EngineOptions, FaultPlan, Instance, Simulation, StretchReport,
    ValidateOptions, Violation,
};
use mmsec_sim::seed;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

/// Outcome of one policy on one instance.
#[derive(Clone, Copy, Debug)]
pub struct TrialResult {
    /// The objective: maximum stretch.
    pub max_stretch: f64,
    /// Mean stretch (secondary metric).
    pub mean_stretch: f64,
    /// Wall-clock time spent inside the policy's `decide`.
    pub decide_time: Duration,
    /// Number of re-executions.
    pub restarts: u64,
}

/// Why a trial could not produce a usable result.
#[derive(Clone, Debug)]
pub enum TrialError {
    /// The engine aborted (stall or event-limit).
    Engine {
        /// Policy that was running.
        kind: PolicyKind,
        /// The engine's error.
        error: EngineError,
    },
    /// The produced schedule failed validation.
    InvalidSchedule {
        /// Policy that was running.
        kind: PolicyKind,
        /// Every violated constraint.
        violations: Vec<Violation>,
    },
}

impl TrialError {
    /// Policy the failing trial was running.
    pub fn kind(&self) -> PolicyKind {
        match self {
            TrialError::Engine { kind, .. } => *kind,
            TrialError::InvalidSchedule { kind, .. } => *kind,
        }
    }

    /// Writes the offending instance and the full violation list to a
    /// dump file (under `$MMSEC_FAILURE_DIR`, default `target/failures`)
    /// so the failure can be replayed with
    /// `mmsec run --instance <dump> --policy <kind>`. Returns the path,
    /// or `None` when even the dump could not be written.
    pub fn dump(&self, instance: &Instance, policy_seed: u64) -> Option<PathBuf> {
        let dir = failure_dir();
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{}-seed{}.txt", self.kind(), policy_seed));
        let mut report = String::new();
        report.push_str(&format!("# trial failure: {self}\n"));
        report.push_str(&format!("# policy seed: {policy_seed}\n"));
        if let TrialError::InvalidSchedule { violations, .. } = self {
            report.push_str(&format!("# {} violation(s):\n", violations.len()));
            for v in violations {
                report.push_str(&format!("#   {v}\n"));
            }
        }
        report.push_str("# offending instance follows:\n");
        report.push_str(&instance.to_text());
        std::fs::write(&path, report).ok()?;
        Some(path)
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialError::Engine { kind, error } => write!(f, "{kind} failed: {error}"),
            TrialError::InvalidSchedule { kind, violations } => write!(
                f,
                "{kind} produced an invalid schedule ({} violations; first: {})",
                violations.len(),
                violations[0]
            ),
        }
    }
}

impl std::error::Error for TrialError {}

/// Fallible form of [`run_policy`]: returns the structured error instead
/// of aborting, leaving dump/abort policy to the caller.
pub fn try_run_policy(
    instance: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    opts: EngineOptions,
    validate: bool,
) -> Result<TrialResult, TrialError> {
    try_run_policy_impl(instance, kind, policy_seed, opts, None, validate)
}

/// [`try_run_policy`] under a compiled fault plan (the robustness
/// experiment, see `docs/faults.md`). An empty plan is exactly
/// [`try_run_policy`].
pub fn try_run_policy_with_faults(
    instance: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    opts: EngineOptions,
    faults: &FaultPlan,
    validate: bool,
) -> Result<TrialResult, TrialError> {
    try_run_policy_impl(instance, kind, policy_seed, opts, Some(faults), validate)
}

fn try_run_policy_impl(
    instance: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    opts: EngineOptions,
    faults: Option<&FaultPlan>,
    validate: bool,
) -> Result<TrialResult, TrialError> {
    let mut policy = kind.build(policy_seed);
    let out = match faults {
        None => Simulation::of(instance)
            .policy(policy.as_mut())
            .options(opts)
            .run(),
        Some(plan) => Simulation::of(instance)
            .policy(policy.as_mut())
            .options(opts)
            .faults(plan)
            .run(),
    }
    .map_err(|error| TrialError::Engine { kind, error })?;
    if validate {
        let vopts = ValidateOptions {
            check_ports: !opts.infinite_ports,
            ..ValidateOptions::default()
        };
        if let Err(violations) = validate_with(instance, &out.schedule, vopts) {
            return Err(TrialError::InvalidSchedule { kind, violations });
        }
    }
    let report = StretchReport::new(instance, &out.schedule);
    Ok(TrialResult {
        max_stretch: report.max_stretch,
        mean_stretch: report.mean_stretch,
        decide_time: out.stats.decide_time,
        restarts: out.stats.restarts,
    })
}

/// Runs `kind` on `instance`; aborts if the schedule is invalid —
/// experiments must never aggregate invalid runs. Before aborting, the
/// offending instance and the full violation list are dumped to a file
/// (see [`TrialError::dump`]) so the failure can be replayed offline.
pub fn run_policy(
    instance: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    opts: EngineOptions,
    validate: bool,
) -> TrialResult {
    try_run_policy(instance, kind, policy_seed, opts, validate).unwrap_or_else(|e| {
        match e.dump(instance, policy_seed) {
            Some(path) => panic!("{e}\n(instance + violations dumped to {})", path.display()),
            None => panic!("{e}\n(failure dump could not be written)"),
        }
    })
}

/// Decide-time histograms collected per [`evaluate_point`] call while
/// collection is enabled (the `repro --metrics-dir` flag).
pub struct PointMetrics {
    /// Base seed of the point (ties the entry to the experiment sweep).
    pub base_seed: u64,
    /// Policy names, parallel to `decide_hist`.
    pub policies: Vec<String>,
    /// Per-policy histogram of per-trial total decide time (seconds).
    pub decide_hist: Vec<Log2Histogram>,
}

static POINT_METRICS: Mutex<Option<Vec<PointMetrics>>> = Mutex::new(None);

/// Starts collecting per-point decide-time histograms (idempotent).
pub fn enable_point_metrics() {
    let mut guard = POINT_METRICS.lock().expect("metrics mutex poisoned");
    if guard.is_none() {
        *guard = Some(Vec::new());
    }
}

/// Takes every point collected since the last drain (empty when
/// collection was never enabled).
pub fn drain_point_metrics() -> Vec<PointMetrics> {
    let mut guard = POINT_METRICS.lock().expect("metrics mutex poisoned");
    match guard.as_mut() {
        Some(points) => std::mem::take(points),
        None => Vec::new(),
    }
}

fn record_point_metrics(make: impl FnOnce() -> PointMetrics) {
    let mut guard = POINT_METRICS.lock().expect("metrics mutex poisoned");
    if let Some(points) = guard.as_mut() {
        points.push(make());
    }
}

/// Serializes drained points as a JSON document (one entry per
/// `evaluate_point` call, in execution order).
pub fn point_metrics_to_json(points: &[PointMetrics]) -> String {
    let entries: Vec<Json> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let per_policy: Vec<Json> = p
                .policies
                .iter()
                .zip(&p.decide_hist)
                .map(|(name, hist)| {
                    Json::obj(vec![
                        ("policy", Json::str(name.clone())),
                        ("decide_time", hist.to_json()),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("point", Json::int(i)),
                ("base_seed", Json::Num(p.base_seed as f64)),
                ("policies", Json::Arr(per_policy)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::str("mmsec-bench-metrics/2")),
        ("points", Json::Arr(entries)),
    ])
    .to_string_pretty()
}

/// One point of a figure: per-policy summaries of max-stretch over `reps`
/// independently seeded instances (plus decide-time summaries for E6).
pub struct PointResult {
    /// Per policy (parallel to the input slice): summary of max-stretch.
    pub max_stretch: Vec<Summary>,
    /// Per policy: summary of decide-time in milliseconds.
    pub decide_ms: Vec<Summary>,
    /// Per policy: summary of mean stretch.
    pub mean_stretch: Vec<Summary>,
    /// Per policy: summary of re-executions per trial (always 0 for
    /// policies that never restart; nonzero under fault injection).
    pub restarts: Vec<Summary>,
}

/// Evaluates every policy on `reps` instances generated by `make`
/// (instance `i` uses seed `derive(base_seed, "instance", i)`).
pub fn evaluate_point<F>(
    make: F,
    policies: &[PolicyKind],
    reps: usize,
    threads: usize,
    base_seed: u64,
    opts: EngineOptions,
    validate: bool,
) -> PointResult
where
    F: Fn(u64) -> Instance + Sync,
{
    evaluate_point_impl(
        make,
        |_, _| None,
        policies,
        reps,
        threads,
        base_seed,
        opts,
        validate,
    )
}

/// [`evaluate_point`] under fault injection: `fault_plan` compiles a plan
/// for each generated instance from the per-instance fault seed
/// `derive(base_seed, "faults", i)` — so trial `i` keeps its instance and
/// policy seeds from the fault-free runner and results are comparable
/// point-to-point across failure rates (the robustness experiment).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_point_with_faults<F, G>(
    make: F,
    fault_plan: G,
    policies: &[PolicyKind],
    reps: usize,
    threads: usize,
    base_seed: u64,
    opts: EngineOptions,
    validate: bool,
) -> PointResult
where
    F: Fn(u64) -> Instance + Sync,
    G: Fn(&Instance, u64) -> FaultPlan + Sync,
{
    evaluate_point_impl(
        make,
        |inst, fseed| Some(fault_plan(inst, fseed)),
        policies,
        reps,
        threads,
        base_seed,
        opts,
        validate,
    )
}

#[allow(clippy::too_many_arguments)]
fn evaluate_point_impl<F, G>(
    make: F,
    fault_plan: G,
    policies: &[PolicyKind],
    reps: usize,
    threads: usize,
    base_seed: u64,
    opts: EngineOptions,
    validate: bool,
) -> PointResult
where
    F: Fn(u64) -> Instance + Sync,
    G: Fn(&Instance, u64) -> Option<FaultPlan> + Sync,
{
    let trials: Vec<Vec<TrialResult>> = run_indexed(reps, threads, |i| {
        let inst = make(seed::derive(base_seed, "instance", i as u64));
        let plan = fault_plan(&inst, seed::derive(base_seed, "faults", i as u64));
        policies
            .iter()
            .map(|&kind| {
                let pseed = seed::derive(base_seed, "policy", i as u64);
                let result = match &plan {
                    None => try_run_policy(&inst, kind, pseed, opts, validate),
                    Some(p) => try_run_policy_with_faults(&inst, kind, pseed, opts, p, validate),
                };
                result.unwrap_or_else(|e| match e.dump(&inst, pseed) {
                    Some(path) => {
                        panic!("{e}\n(instance + violations dumped to {})", path.display())
                    }
                    None => panic!("{e}\n(failure dump could not be written)"),
                })
            })
            .collect()
    });
    record_point_metrics(|| {
        let mut decide_hist: Vec<Log2Histogram> = vec![Log2Histogram::default(); policies.len()];
        for trial in &trials {
            for (p, r) in trial.iter().enumerate() {
                decide_hist[p].record(r.decide_time.as_secs_f64());
            }
        }
        PointMetrics {
            base_seed,
            policies: policies.iter().map(|p| p.name().to_string()).collect(),
            decide_hist,
        }
    });
    let column = |f: &dyn Fn(&TrialResult) -> f64, p: usize| -> Summary {
        let values: Vec<f64> = trials.iter().map(|t| f(&t[p])).collect();
        Summary::of(&values)
    };
    PointResult {
        max_stretch: (0..policies.len())
            .map(|p| column(&|t| t.max_stretch, p))
            .collect(),
        decide_ms: (0..policies.len())
            .map(|p| column(&|t| t.decide_time.as_secs_f64() * 1e3, p))
            .collect(),
        mean_stretch: (0..policies.len())
            .map(|p| column(&|t| t.mean_stretch, p))
            .collect(),
        restarts: (0..policies.len())
            .map(|p| column(&|t| t.restarts as f64, p))
            .collect(),
    }
}

/// Adaptive variant of [`evaluate_point`]: runs instances until the 95%
/// CI of each policy's mean max-stretch is below `rule.rel_ci_target`
/// (or the cap). Sequential by nature (the stopping decision depends on
/// the prefix); trial `i` uses the same seed as the fixed-size runner,
/// so adaptive results are prefixes of full runs.
pub fn evaluate_point_adaptive<F>(
    make: F,
    policies: &[PolicyKind],
    rule: mmsec_analysis::Convergence,
    base_seed: u64,
    opts: EngineOptions,
    validate: bool,
) -> Vec<mmsec_analysis::AdaptiveResult>
where
    F: Fn(u64) -> Instance,
{
    policies
        .iter()
        .map(|&kind| {
            mmsec_analysis::run_until_converged(rule, |i| {
                let inst = make(seed::derive(base_seed, "instance", i as u64));
                let pseed = seed::derive(base_seed, "policy", i as u64);
                run_policy(&inst, kind, pseed, opts, validate).max_stretch
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_workload::RandomCcrConfig;

    fn small_cfg() -> RandomCcrConfig {
        RandomCcrConfig {
            n: 40,
            num_cloud: 4,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
    }

    #[test]
    fn trial_error_dump_is_a_replayable_report() {
        use mmsec_platform::JobId;
        let inst = small_cfg().generate(3);
        let err = TrialError::InvalidSchedule {
            kind: PolicyKind::Srpt,
            violations: vec![
                mmsec_platform::Violation::Unfinished(JobId(0)),
                mmsec_platform::Violation::Unallocated(JobId(1)),
            ],
        };
        let dir = std::env::temp_dir().join(format!("mmsec-dump-{}", std::process::id()));
        // The env var is process-global; keep the whole suite honest by
        // restoring it even though no other test currently reads it.
        std::env::set_var("MMSEC_FAILURE_DIR", &dir);
        let path = err.dump(&inst, 7).expect("dump written");
        std::env::remove_var("MMSEC_FAILURE_DIR");
        assert!(path.starts_with(&dir));
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("seed7"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("invalid schedule"), "{text}");
        assert!(text.contains("2 violation(s)"), "{text}");
        // The dumped instance round-trips, so the failure is replayable.
        let tail = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .collect::<Vec<_>>();
        let back = Instance::from_text(&tail.join("\n")).expect("replayable instance");
        assert_eq!(back, inst);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_policy_produces_valid_metrics() {
        let inst = small_cfg().generate(1);
        for kind in PolicyKind::ALL {
            let r = run_policy(&inst, kind, 7, EngineOptions::default(), true);
            assert!(r.max_stretch >= 1.0 - 1e-9, "{kind}: {}", r.max_stretch);
            assert!(r.mean_stretch <= r.max_stretch + 1e-9);
        }
    }

    #[test]
    fn evaluate_point_shapes() {
        let cfg = small_cfg();
        let policies = [PolicyKind::Srpt, PolicyKind::SsfEdf];
        let point = evaluate_point(
            |seed| cfg.generate(seed),
            &policies,
            4,
            2,
            99,
            EngineOptions::default(),
            true,
        );
        assert_eq!(point.max_stretch.len(), 2);
        assert_eq!(point.decide_ms.len(), 2);
        assert_eq!(point.max_stretch[0].n, 4);
        assert!(point.max_stretch.iter().all(|s| s.mean >= 1.0 - 1e-9));
    }

    #[test]
    fn faulted_point_reports_restarts_and_matches_fault_free_seeds() {
        use mmsec_platform::FaultConfig;
        use mmsec_sim::Time;
        let cfg = small_cfg();
        let policies = [PolicyKind::Srpt, PolicyKind::SsfEdf];
        let faulted = evaluate_point_with_faults(
            |s| cfg.generate(s),
            |inst, fseed| {
                FaultConfig::uniform_exponential(
                    inst.spec.num_edge(),
                    inst.spec.num_cloud(),
                    60.0,
                    5.0,
                )
                .compile(fseed, Time::new(5_000.0))
            },
            &policies,
            4,
            2,
            99,
            EngineOptions::default(),
            true,
        );
        assert!(
            faulted.restarts.iter().any(|s| s.mean > 0.0),
            "exponential crashes at MTBF 60 never forced a restart"
        );
        // An always-empty plan reproduces the fault-free runner exactly
        // (same instance/policy seeds, same engine path).
        let empty = evaluate_point_with_faults(
            |s| cfg.generate(s),
            |inst, _| FaultPlan::empty(inst.spec.num_edge(), inst.spec.num_cloud()),
            &policies,
            4,
            2,
            99,
            EngineOptions::default(),
            true,
        );
        let plain = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            4,
            2,
            99,
            EngineOptions::default(),
            true,
        );
        for p in 0..policies.len() {
            assert_eq!(empty.max_stretch[p].mean, plain.max_stretch[p].mean);
            assert!(faulted.max_stretch[p].mean >= plain.max_stretch[p].mean - 1e-9);
        }
    }

    #[test]
    fn adaptive_point_is_prefix_of_fixed() {
        let cfg = small_cfg();
        let policies = [PolicyKind::Srpt];
        let rule = mmsec_analysis::Convergence {
            min_trials: 3,
            max_trials: 6,
            rel_ci_target: 1e-9, // force the cap: exactly 6 trials
        };
        let adaptive = evaluate_point_adaptive(
            |s| cfg.generate(s),
            &policies,
            rule,
            42,
            EngineOptions::default(),
            false,
        );
        assert_eq!(adaptive.len(), 1);
        assert_eq!(adaptive[0].values.len(), 6);
        assert!(!adaptive[0].converged);
        // Same values as the fixed runner's first six trials.
        let fixed = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            6,
            1,
            42,
            EngineOptions::default(),
            false,
        );
        assert!((adaptive[0].summary.mean - fixed.max_stretch[0].mean).abs() < 1e-12);
    }

    #[test]
    fn evaluation_is_reproducible_across_thread_counts() {
        let cfg = small_cfg();
        let policies = [PolicyKind::Greedy];
        let a = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            6,
            1,
            5,
            EngineOptions::default(),
            false,
        );
        let b = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            6,
            4,
            5,
            EngineOptions::default(),
            false,
        );
        assert_eq!(a.max_stretch[0].mean, b.max_stretch[0].mean);
    }
}
