//! `mmsec-bench` — the experiment harness regenerating every figure and
//! table of the paper's evaluation (§VI), the ablations of DESIGN.md, and
//! the §IV reduction cross-checks. The `repro` binary is the command-line
//! front-end; the criterion benches measure heuristic scheduling time.

#![warn(missing_docs)]

pub mod experiments;
pub mod extra;
pub mod hardness;
pub mod load;
pub mod run;
pub mod scale;

pub use experiments::Figure;
pub use run::{
    drain_point_metrics, enable_point_metrics, evaluate_point, evaluate_point_with_faults,
    point_metrics_to_json, run_policy, try_run_policy, try_run_policy_with_faults, PointMetrics,
    PointResult, TrialError, TrialResult,
};
pub use scale::Scale;
