//! Additional experiments beyond the paper's figures:
//!
//! * **mean-stretch comparison** — §II recalls that SRPT is
//!   O(1)-competitive for the *average* stretch \[28\], while SSF-EDF
//!   targets the maximum; measuring both metrics side by side shows the
//!   trade-off;
//! * **Bender competitiveness** — the stretch-so-far EDF algorithm is
//!   Δ-competitive on one machine \[3\]; we measure the empirical
//!   online/offline ratio against Δ on random single-machine instances;
//! * **arrival-process ablation** — uniform (paper) vs Poisson arrivals
//!   at equal load.

use crate::run::evaluate_point;
use crate::scale::Scale;
use crate::Figure;
use mmsec_analysis::table::fmt_num;
use mmsec_analysis::{Summary, Table};
use mmsec_core::PolicyKind;
use mmsec_offline::single_machine::{optimal_max_stretch, OfflineJob};
use mmsec_platform::{EngineOptions, Simulation, StretchReport};
use mmsec_sim::seed;
use mmsec_workload::{ArrivalProcess, RandomCcrConfig};

/// Max- and mean-stretch of the paper heuristics on one configuration.
pub fn mean_vs_max_stretch(scale: &Scale, seed_root: u64) -> Figure {
    let policies = PolicyKind::PAPER;
    let mut headers = vec!["metric".to_string()];
    headers.extend(policies.iter().map(|p| p.name().to_string()));
    let mut table = Table::new(headers);
    let cfg = RandomCcrConfig {
        n: scale.n_random,
        ccr: 1.0,
        load: 0.5,
        ..RandomCcrConfig::default()
    };
    let point = evaluate_point(
        |s| cfg.generate(s),
        &policies,
        scale.reps,
        scale.threads,
        seed_root ^ 0x77,
        EngineOptions::default(),
        scale.validate,
    );
    let mut max_row = vec!["max-stretch".to_string()];
    max_row.extend(point.max_stretch.iter().map(|s| fmt_num(s.mean)));
    table.push_row(max_row);
    let mut mean_row = vec!["mean-stretch".to_string()];
    mean_row.extend(point.mean_stretch.iter().map(|s| fmt_num(s.mean)));
    table.push_row(mean_row);
    Figure {
        id: "X1/mean-vs-max",
        title: format!(
            "max- vs mean-stretch (random, CCR 1, load 0.5, n={}, {} reps)",
            scale.n_random, scale.reps
        ),
        table,
        notes: vec![
            "SRPT's strength is the mean (it is O(1)-competitive for average stretch \
             [28]); SSF-EDF's is the max — both should show here."
                .into(),
        ],
    }
}

/// Empirical competitiveness of single-machine stretch-so-far EDF
/// (Edge-Only on a one-edge platform) against the offline optimum, versus
/// the theoretical Δ bound.
pub fn bender_competitiveness(scale: &Scale, seed_root: u64) -> Figure {
    let mut table = Table::new(["Δ (max/min job)", "mean ratio", "p95 ratio", "max ratio"]);
    for &delta_target in &[2.0f64, 10.0, 50.0] {
        let ratios: Vec<f64> = mmsec_analysis::run_indexed(scale.reps, scale.threads, |i| {
            let s = seed::derive(seed_root, "bender", (delta_target as u64) << 32 | i as u64);
            // One edge unit at speed 1, no cloud; works spread to hit
            // the target Δ.
            let cfg = RandomCcrConfig {
                n: (scale.n_random / 10).max(8),
                num_cloud: 0,
                slow_edges: 1,
                fast_edges: 0,
                slow_speed: 1.0,
                load: 0.5,
                work_dist: mmsec_workload::Dist::uniform(1.0, delta_target),
                ..RandomCcrConfig::default()
            };
            let inst = cfg.generate(s);
            let mut policy = PolicyKind::EdgeOnly.build(s);
            let out = Simulation::of(&inst)
                .policy(policy.as_mut())
                .run()
                .expect("completes");
            let online = StretchReport::new(&inst, &out.schedule).max_stretch;
            let jobs: Vec<OfflineJob> = inst
                .jobs
                .iter()
                .map(|j| OfflineJob {
                    release: j.release.seconds(),
                    proc_time: j.work,
                    min_time: j.min_time(&inst.spec),
                })
                .collect();
            let offline = optimal_max_stretch(&jobs, 1e-6);
            online / offline
        });
        let summary = Summary::of(&ratios);
        table.push_row([
            fmt_num(delta_target),
            fmt_num(summary.mean),
            fmt_num(mmsec_analysis::stats::percentile(&ratios, 95.0)),
            fmt_num(summary.max),
        ]);
    }
    Figure {
        id: "X2/bender-competitive",
        title: "single-machine stretch-so-far EDF: online/offline ratio vs Δ".into(),
        table,
        notes: vec![
            "Theory guarantees ratio ≤ Δ; empirically the ratio should stay far below \
             the bound and grow mildly with Δ."
                .into(),
        ],
    }
}

/// Uniform (paper) versus Poisson arrivals at equal load.
pub fn ablation_arrivals(scale: &Scale, seed_root: u64) -> Figure {
    let policies = [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf];
    let mut table = Table::new(["arrivals", "greedy", "srpt", "ssf-edf"]);
    for (name, process) in [
        ("uniform (paper)", ArrivalProcess::Uniform),
        ("poisson", ArrivalProcess::Poisson),
    ] {
        let cfg = RandomCcrConfig {
            n: scale.n_random,
            ccr: 1.0,
            load: 0.5,
            arrivals: process,
            ..RandomCcrConfig::default()
        };
        let point = evaluate_point(
            |s| cfg.generate(s),
            &policies,
            scale.reps,
            scale.threads,
            seed_root ^ 0x99,
            EngineOptions::default(),
            scale.validate,
        );
        table.push_row([
            name.to_string(),
            fmt_num(point.max_stretch[0].mean),
            fmt_num(point.max_stretch[1].mean),
            fmt_num(point.max_stretch[2].mean),
        ]);
    }
    Figure {
        id: "A6/arrivals",
        title: "arrival-process ablation at equal load".into(),
        table,
        notes: vec!["Poisson bursts should stress the heuristics slightly more.".into()],
    }
}

/// Fairness beyond the max: percentiles of the per-job stretch
/// distribution (the paper motivates max-stretch through fairness — this
/// shows the whole distribution, not just its tail).
pub fn fairness(scale: &Scale, seed_root: u64) -> Figure {
    let policies = PolicyKind::PAPER;
    let mut table = Table::new(["policy", "p50", "p90", "p99", "max"]);
    let cfg = RandomCcrConfig {
        n: scale.n_random,
        ccr: 1.0,
        load: 0.5,
        ..RandomCcrConfig::default()
    };
    for kind in policies {
        // Pool per-job stretches over all reps.
        let pooled: Vec<Vec<f64>> = mmsec_analysis::run_indexed(scale.reps, scale.threads, |i| {
            let inst = cfg.generate(seed::derive(seed_root, "fair", i as u64));
            let mut policy = kind.build(seed::derive(seed_root, "fairp", i as u64));
            let out = Simulation::of(&inst)
                .policy(policy.as_mut())
                .run()
                .expect("completes");
            StretchReport::new(&inst, &out.schedule).stretches
        });
        let all: Vec<f64> = pooled.into_iter().flatten().collect();
        table.push_row([
            kind.name().to_string(),
            fmt_num(mmsec_analysis::stats::percentile(&all, 50.0)),
            fmt_num(mmsec_analysis::stats::percentile(&all, 90.0)),
            fmt_num(mmsec_analysis::stats::percentile(&all, 99.0)),
            fmt_num(all.iter().copied().fold(0.0, f64::max)),
        ]);
    }
    Figure {
        id: "X5/fairness",
        title: format!(
            "per-job stretch distribution (random, CCR 1, load 0.5, n={}, {} reps pooled)",
            scale.n_random, scale.reps
        ),
        table,
        notes: vec![
            "Max-stretch optimization is about the tail: policies may tie at the \
             median yet differ widely at p99/max."
                .into(),
        ],
    }
}

/// Deterministic adversarial streams: the classic long-job-vs-short-
/// stream construction as the stream grows, and geometric release chains.
pub fn adversarial(_scale: &Scale, _seed_root: u64) -> Figure {
    use mmsec_workload::adversarial::{geometric_chain, long_vs_shorts};
    let policies = PolicyKind::PAPER;
    let mut headers = vec!["instance".to_string()];
    headers.extend(policies.iter().map(|p| p.name().to_string()));
    let mut table = Table::new(headers);
    let eval = |label: String, inst: &mmsec_platform::Instance, table: &mut Table| {
        let mut row = vec![label];
        for kind in policies {
            let mut policy = kind.build(0);
            let out = Simulation::of(inst)
                .policy(policy.as_mut())
                .run()
                .expect("completes");
            row.push(fmt_num(StretchReport::new(inst, &out.schedule).max_stretch));
        }
        table.push_row(row);
    };
    for num_shorts in [10usize, 20, 40, 80] {
        let inst = long_vs_shorts(10.0, num_shorts);
        eval(format!("stream k={num_shorts}"), &inst, &mut table);
    }
    for levels in [3usize, 5, 7] {
        let inst = geometric_chain(64.0, levels);
        eval(format!("chain L={levels}"), &inst, &mut table);
    }
    Figure {
        id: "X4/adversarial",
        title: "adversarial constructions (Δ = 10 stream; Δ = 64 geometric chain)".into(),
        table,
        notes: vec![
            "A saturating stream forces max-stretch (Δ + k)/Δ on every policy; \
             geometric chains force repeated preemption decisions — the signal is \
             which policies degrade beyond the forced bounds."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            reps: 2,
            n_random: 30,
            kang_ns: vec![],
            threads: 2,
            validate: true,
        }
    }

    #[test]
    fn mean_vs_max_runs() {
        let fig = mean_vs_max_stretch(&tiny(), 3);
        assert_eq!(fig.table.num_rows(), 2);
    }

    #[test]
    fn bender_competitiveness_runs_and_respects_bound() {
        let fig = bender_competitiveness(&tiny(), 3);
        assert_eq!(fig.table.num_rows(), 3);
    }

    #[test]
    fn arrival_ablation_runs() {
        let fig = ablation_arrivals(&tiny(), 3);
        assert_eq!(fig.table.num_rows(), 2);
    }

    #[test]
    fn adversarial_runs() {
        let fig = adversarial(&tiny(), 3);
        assert_eq!(fig.table.num_rows(), 7, "4 stream sizes + 3 chain depths");
    }

    #[test]
    fn fairness_runs_with_monotone_percentiles() {
        let fig = fairness(&tiny(), 3);
        assert_eq!(fig.table.num_rows(), 4);
        // Per row: p50 ≤ p90 ≤ p99 ≤ max.
        for line in fig.table.to_csv().lines().skip(1) {
            let cells: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|c| c.parse().unwrap())
                .collect();
            assert!(cells[0] <= cells[1] && cells[1] <= cells[2] && cells[2] <= cells[3]);
        }
    }
}
