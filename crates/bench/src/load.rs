//! Load-generation plumbing for the sharded serve saturation benchmark:
//! deterministic NDJSON workload scripts (tenant mix, release schedule)
//! and latency aggregation (p50/p99 over admission-to-completion wall
//! times). The `mmsec-load` binary (in `mmsec-apps`) drives a live
//! socket server with these pieces; keeping the logic here keeps it unit
//! -testable without a socket.
//!
//! Gap and work draws come from `mmsec-workload`'s [`Dist`] toolkit (the
//! same exponential every batch generator uses) rather than a private
//! sampler, so one seeded codepath feeds batch and streaming alike.

use mmsec_workload::Dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Parameters of one generated load script.
#[derive(Clone, Copy, Debug)]
pub struct LoadPlan {
    /// Total job submissions to emit.
    pub jobs: usize,
    /// Distinct tenants, named `t0..t{n-1}`, assigned round-robin.
    pub tenants: usize,
    /// Mean virtual-time gap between consecutive releases *per tenant*
    /// (the arrival rate knob: smaller = denser backlog per session).
    pub mean_gap: f64,
    /// Mean job work in virtual seconds.
    pub mean_work: f64,
    /// Edge units on the serving platform (origins cycle over them).
    pub edges: usize,
    /// Seed for the gap/work jitter.
    pub seed: u64,
}

impl Default for LoadPlan {
    fn default() -> Self {
        LoadPlan {
            jobs: 10_000,
            tenants: 8,
            mean_gap: 1.0,
            mean_work: 0.8,
            edges: 2,
            seed: 1,
        }
    }
}

/// One scripted submission line, plus the key a client needs to join the
/// server's `admit`/`completion` records back to it: the tenant and the
/// tenant-local line number (per-tenant lanes number their own lines
/// from 1).
#[derive(Clone, Debug)]
pub struct ScriptedJob {
    /// The NDJSON line to send, newline-terminated.
    pub line: String,
    /// Tenant index (tenant name is `t{index}`).
    pub tenant: usize,
    /// 1-based line number within this tenant's lane.
    pub lane_line: usize,
}

/// Generates the full deterministic script for `plan`. Releases are
/// non-decreasing per tenant (exponential-ish gaps via inverse CDF), so
/// each lane replays a plausible arrival process; work is exponential
/// around `mean_work` with a floor to keep jobs non-degenerate.
pub fn script(plan: &LoadPlan) -> Vec<ScriptedJob> {
    assert!(plan.tenants >= 1 && plan.edges >= 1);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let gap_dist = Dist::exponential(plan.mean_gap);
    let work_dist = Dist::exponential(plan.mean_work);
    let mut clocks = vec![0.0f64; plan.tenants];
    let mut lane_lines = vec![0usize; plan.tenants];
    let mut out = Vec::with_capacity(plan.jobs);
    for i in 0..plan.jobs {
        let tenant = i % plan.tenants;
        let gap = gap_dist.sample(&mut rng);
        let work = work_dist.sample(&mut rng).max(0.01);
        clocks[tenant] += gap;
        lane_lines[tenant] += 1;
        let origin = rng.gen_range(0..plan.edges);
        let mut line = String::with_capacity(96);
        let _ = writeln!(
            line,
            "{{\"tenant\": \"t{tenant}\", \"origin\": {origin}, \"release\": {:.4}, \
             \"work\": {:.4}}}",
            clocks[tenant], work
        );
        out.push(ScriptedJob {
            line,
            tenant,
            lane_line: lane_lines[tenant],
        });
    }
    out
}

/// Streaming latency aggregator: records admission-to-completion wall
/// latencies and reports quantiles without keeping the stream sorted.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in seconds.
    pub fn record(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds >= 0.0 {
            self.samples.push(seconds);
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on the sorted
    /// samples; `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let rank = ((q.clamp(0.0, 1.0) * self.samples.len() as f64).ceil() as usize)
            .clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_is_deterministic_and_per_tenant_ordered() {
        let plan = LoadPlan {
            jobs: 200,
            tenants: 5,
            ..LoadPlan::default()
        };
        let a = script(&plan);
        let b = script(&plan);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
        }
        // Per-tenant releases are non-decreasing and lane lines count up.
        for t in 0..5 {
            let mine: Vec<_> = a.iter().filter(|j| j.tenant == t).collect();
            assert_eq!(mine.len(), 40);
            for (i, j) in mine.iter().enumerate() {
                assert_eq!(j.lane_line, i + 1);
            }
            let releases: Vec<f64> = mine
                .iter()
                .map(|j| {
                    let key = "\"release\": ";
                    let at = j.line.find(key).unwrap() + key.len();
                    j.line[at..].split(',').next().unwrap().parse().unwrap()
                })
                .collect();
            assert!(releases.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut stats = LatencyStats::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            stats.record(x);
        }
        assert_eq!(stats.len(), 5);
        assert_eq!(stats.quantile(0.0), Some(1.0));
        assert_eq!(stats.quantile(0.5), Some(3.0));
        assert_eq!(stats.quantile(0.99), Some(5.0));
        assert_eq!(stats.quantile(1.0), Some(5.0));
        assert_eq!(LatencyStats::new().quantile(0.5), None);
    }
}
