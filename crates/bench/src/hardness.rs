//! E7 — numerical validation of the §IV complexity results: for randomly
//! drawn small inputs, the combinatorial decision (partition exists?)
//! must coincide with the scheduling decision (threshold stretch
//! achievable?), in both directions, as Theorems 1 and 2 assert.

use mmsec_analysis::Table;
use mmsec_offline::brute::optimal_mmsh;
use mmsec_offline::reductions::{
    has_three_partition, has_two_partition_eq, mmsh_to_mmseco, three_partition_to_mmsh,
    two_partition_eq_to_mmsh,
};
use mmsec_offline::{optimal_order_based, MmshInstance};
use mmsec_sim::seed::SplitMix64;

/// Outcome of the reduction cross-checks.
pub struct HardnessReport {
    /// Per-theorem agreement counts.
    pub table: Table,
    /// True iff every trial agreed.
    pub all_consistent: bool,
}

/// Draws random small instances of each source problem and cross-checks
/// the reduction equivalences.
pub fn verify_reductions(trials: usize, seed: u64) -> HardnessReport {
    let mut rng = SplitMix64::new(seed);
    let mut table = Table::new(["theorem", "trials", "agreements", "yes-instances"]);
    let mut all_ok = true;

    // Theorem 1: 2-PARTITION-EQ (n = 2: four integers < S).
    let mut agree = 0;
    let mut yes = 0;
    for _ in 0..trials {
        // Draw 4 values in [1, 9], adjusting the last for an even total.
        let mut a: Vec<u64> = (0..4).map(|_| 1 + rng.next_u64() % 9).collect();
        if a.iter().sum::<u64>() % 2 == 1 {
            a[3] += 1;
        }
        let s = a.iter().sum::<u64>() / 2;
        if a.iter().any(|&ai| ai >= s) {
            // Trivially-no region excluded by the reduction precondition.
            agree += 1;
            continue;
        }
        let expected = has_two_partition_eq(&a);
        let (inst, threshold) = two_partition_eq_to_mmsh(&a);
        let achieved = optimal_mmsh(&inst).max_stretch <= threshold + 1e-9;
        if expected == achieved {
            agree += 1;
        } else {
            all_ok = false;
        }
        if expected {
            yes += 1;
        }
    }
    table.push_row([
        "Thm 1 (2-PARTITION-EQ)".to_string(),
        trials.to_string(),
        agree.to_string(),
        yes.to_string(),
    ]);

    // Theorem 2: 3-PARTITION with n = 2 (six integers in (B/4, B/2)).
    let mut agree = 0;
    let mut yes = 0;
    for _ in 0..trials {
        let b = 20u64;
        // Values in (5, 10) = {6..9}; fix the sum to 2B = 40 by retry.
        let a: Vec<u64> = loop {
            let cand: Vec<u64> = (0..6).map(|_| 6 + rng.next_u64() % 4).collect();
            if cand.iter().sum::<u64>() == 2 * b {
                break cand;
            }
        };
        let expected = has_three_partition(&a, b);
        let (inst, threshold) = three_partition_to_mmsh(&a, b);
        let achieved = optimal_mmsh(&inst).max_stretch <= threshold + 1e-9;
        if expected == achieved {
            agree += 1;
        } else {
            all_ok = false;
        }
        if expected {
            yes += 1;
        }
    }
    table.push_row([
        "Thm 2 (3-PARTITION)".to_string(),
        trials.to_string(),
        agree.to_string(),
        yes.to_string(),
    ]);

    // Theorem 3: MMSH ↔ MMSECO embedding (optimal values coincide).
    let mut agree = 0;
    for _ in 0..trials {
        let n_jobs = 4 + (rng.next_u64() % 3) as usize; // 4..6
        let procs = 2 + (rng.next_u64() % 2) as usize; // 2..3
        let works: Vec<f64> = (0..n_jobs)
            .map(|_| 1.0 + (rng.next_u64() % 8) as f64)
            .collect();
        let mmsh = MmshInstance::new(procs, works);
        let a = optimal_mmsh(&mmsh).max_stretch;
        let b = optimal_order_based(&mmsh_to_mmseco(&mmsh)).max_stretch;
        if (a - b).abs() < 1e-9 {
            agree += 1;
        } else {
            all_ok = false;
        }
    }
    table.push_row([
        "Thm 3 (MMSH→MMSECO)".to_string(),
        trials.to_string(),
        agree.to_string(),
        "-".to_string(),
    ]);

    HardnessReport {
        table,
        all_consistent: all_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_agree_on_random_trials() {
        let report = verify_reductions(12, 2024);
        assert!(report.all_consistent, "\n{}", report.table.to_markdown());
        assert_eq!(report.table.num_rows(), 3);
    }
}
