//! Experiment scale presets.
//!
//! The paper averages 1000 instances of n = 4000 jobs per plotted point —
//! hours of compute across the whole evaluation. The same code path runs
//! at three scales; EXPERIMENTS.md records which scale produced the
//! committed numbers.

/// How big to run each experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Scale {
    /// Instances averaged per point (paper: 1000).
    pub reps: usize,
    /// Jobs per random instance (paper: 4000).
    pub n_random: usize,
    /// Job counts swept in the Kang experiments (paper: up to thousands).
    pub kang_ns: Vec<usize>,
    /// Worker threads for the trial runner.
    pub threads: usize,
    /// Validate every produced schedule against §III-B (slows large runs).
    pub validate: bool,
}

impl Scale {
    /// CI scale: the smallest run that still exercises every code path —
    /// the `repro-smoke` CI job runs `all` at this scale on every push.
    pub fn smoke() -> Scale {
        Scale {
            reps: 2,
            n_random: 60,
            kang_ns: vec![20, 40],
            threads: mmsec_analysis::default_threads(),
            validate: true,
        }
    }

    /// Smoke-test scale: seconds.
    pub fn quick() -> Scale {
        Scale {
            reps: 3,
            n_random: 120,
            kang_ns: vec![30, 60, 120],
            threads: mmsec_analysis::default_threads(),
            validate: true,
        }
    }

    /// Default reporting scale: minutes on a small machine (used for
    /// EXPERIMENTS.md; increase towards `full` on many-core hosts).
    pub fn standard() -> Scale {
        Scale {
            reps: 12,
            n_random: 300,
            kang_ns: vec![100, 200, 400],
            threads: mmsec_analysis::default_threads(),
            validate: true,
        }
    }

    /// Paper scale: hours.
    pub fn full() -> Scale {
        Scale {
            reps: 1000,
            n_random: 4000,
            kang_ns: vec![1000, 2000, 4000],
            threads: mmsec_analysis::default_threads(),
            validate: false,
        }
    }

    /// Parses `smoke` / `quick` / `standard` / `full`.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "smoke" => Some(Scale::smoke()),
            "quick" => Some(Scale::quick()),
            "standard" => Some(Scale::standard()),
            "full" => Some(Scale::full()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::smoke()));
        assert_eq!(Scale::parse("quick"), Some(Scale::quick()));
        assert_eq!(Scale::parse("standard"), Some(Scale::standard()));
        assert_eq!(Scale::parse("full"), Some(Scale::full()));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::default(), Scale::standard());
    }

    #[test]
    fn full_matches_paper_parameters() {
        let f = Scale::full();
        assert_eq!(f.reps, 1000);
        assert_eq!(f.n_random, 4000);
        assert!(f.kang_ns.contains(&4000));
    }
}
