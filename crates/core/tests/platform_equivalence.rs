//! The versioned platform runtime is an exact generalization of the
//! frozen-`Instance` engine.
//!
//! Two headline properties, each across the whole policy registry and
//! with/without fault plans:
//!
//! 1. **Grown ≡ frozen**: a session that starts from a single-edge
//!    platform and *builds* the target shape through pre-start
//!    [`Session`](mmsec_platform::Session) mutations (`add_edge`,
//!    `add_cloud`) produces a bit-identical schedule to the batch run on
//!    the frozen instance of that shape. Unit ids are assigned in join
//!    order, so growing in spec order reproduces the spec exactly.
//! 2. **Tombstones are inert**: adding units and removing them again
//!    before the run starts leaves the schedule bit-identical to never
//!    having had them — a tombstoned unit is invisible to every policy.
//!
//! Zero mutations need no property of their own: a never-mutated
//! `PlatformState` reports no availability overlay, which is the exact
//! legacy static fast path (covered by the session/gating equivalence
//! suites and the goldens).

use mmsec_core::PolicyKind;
use mmsec_faults::FaultConfig;
use mmsec_platform::{EdgeId, EngineOptions, Instance, PlatformSpec, Simulation};
use mmsec_sim::Time;
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

/// Workload family × size × generator seed (the session-equivalence
/// sizes, kept small for the registry × fault matrix).
fn arb_instance() -> impl Strategy<Value = Instance> {
    let kang = (2usize..25, 0u64..1000).prop_map(|(n, seed)| {
        KangConfig {
            num_edge: 4,
            num_cloud: 3,
            n,
            ..KangConfig::default()
        }
        .generate(seed)
    });
    let ccr = (2usize..25, 0u64..1000, 1usize..4).prop_map(|(n, seed, num_cloud)| {
        RandomCcrConfig {
            n,
            num_cloud,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(seed)
    });
    prop_oneof![kang, ccr]
}

/// `None` = fault-free; `Some((mtbf, mttr, seed))` = a uniform
/// exponential crash/recover model compiled against the instance.
fn arb_faults() -> impl Strategy<Value = Option<(f64, f64, u64)>> {
    prop_oneof![
        2 => Just(None),
        3 => (20.0f64..200.0, 1.0f64..10.0, 0u64..1000).prop_map(Some),
    ]
}

/// Reorders `inst`'s jobs by (release, original index) so that streaming
/// submission order matches job-id order.
fn release_sorted(inst: &Instance) -> Instance {
    let mut jobs = inst.jobs.clone();
    jobs.sort_by(|a, b| a.release.partial_cmp(&b.release).expect("finite releases"));
    Instance::new(inst.spec.clone(), jobs).expect("reordering preserves validity")
}

fn assert_grown_equals_frozen(
    inst: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    faults: Option<(f64, f64, u64)>,
) -> Result<(), TestCaseError> {
    let inst = release_sorted(inst);
    let spec = &inst.spec;
    let plan = faults.map(|(mtbf, mttr, fault_seed)| {
        FaultConfig::uniform_exponential(spec.num_edge(), spec.num_cloud(), mtbf, mttr)
            .compile(fault_seed, Time::new(1e5))
    });

    // Batch: the frozen instance, everything known up front — on the
    // reference binary-heap event queue, so the grown-platform comparison
    // (calendar queue) also differentially pins the two queue variants.
    let mut batch_policy = kind.build(policy_seed);
    let mut sim = Simulation::of(&inst)
        .policy(batch_policy.as_mut())
        .options(EngineOptions {
            reference_queue: true,
            ..EngineOptions::default()
        });
    if let Some(plan) = &plan {
        sim = sim.faults(plan);
    }
    let batch = sim.run();

    // Grown: start from edge 0 alone, then join the remaining units in
    // spec order before the run starts. Ids are assigned in join order,
    // so the session's platform ends bit-identical to `spec`.
    let seed_spec = PlatformSpec::builder()
        .edges(vec![spec.edge_speed(EdgeId(0))])
        .clouds(Vec::new())
        .build();
    let empty = Instance::new(seed_spec, Vec::new()).expect("single-edge seed");
    let mut stream_policy = kind.build(policy_seed);
    let mut sim = Simulation::of(&empty).policy(stream_policy.as_mut());
    if let Some(plan) = &plan {
        sim = sim.faults(plan);
    }
    let mut session = sim.session();
    for j in spec.edges().skip(1) {
        let id = session.add_edge(spec.edge_speed(j)).expect("join edge");
        prop_assert_eq!(id, j);
    }
    for k in spec.clouds() {
        let id = session.add_cloud(spec.cloud_speed(k)).expect("join cloud");
        prop_assert_eq!(id, k);
    }
    for job in &inst.jobs {
        if job.release > session.now() {
            let _ = session.run_until(job.release).expect("session advance");
        }
        session.submit(*job).expect("valid job");
    }
    let streamed = session.drain();
    match (batch, streamed) {
        (Ok(batch), Ok(())) => {
            let out = session.into_outcome();
            prop_assert_eq!(&out.schedule, &batch.schedule, "{} schedule differs", kind);
            prop_assert_eq!(
                out.stats.restarts,
                batch.stats.restarts,
                "{} restarts",
                kind
            );
        }
        // Both paths must fail identically (e.g. stalled on a dead unit).
        (batch, streamed) => {
            prop_assert_eq!(
                batch.map(|_| ()).err(),
                streamed.err(),
                "{} failure mode differs",
                kind
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Headline: a platform grown unit-by-unit through the mutation API
    /// schedules bit-identically to the frozen instance of that shape.
    #[test]
    fn grown_platform_equals_frozen_batch(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        faults in arb_faults(),
    ) {
        for kind in PolicyKind::ALL {
            assert_grown_equals_frozen(&inst, kind, policy_seed, faults)?;
        }
    }

    /// A mid-run platform mutation lands at an arbitrary paused instant —
    /// almost always strictly *inside* a calendar bucket, between two
    /// rotations — and bumps the decision epoch there. The calendar queue
    /// must absorb the bump (and the resulting version-mismatch rebuilds
    /// of every policy's round state) exactly like the reference binary
    /// heap: schedules stay bit-identical.
    #[test]
    fn midrun_mutation_between_rotations_matches_reference_queue(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        cut in 0.05f64..0.95,
    ) {
        let inst = release_sorted(&inst);
        let horizon = inst
            .jobs
            .iter()
            .map(|j| j.release.seconds())
            .fold(0.0_f64, f64::max);
        let empty = Instance::new(inst.spec.clone(), Vec::new()).expect("empty instance");
        for kind in PolicyKind::ALL {
            let run = |reference_queue: bool| {
                let mut policy = kind.build(policy_seed);
                let mut session = Simulation::of(&empty)
                    .policy(policy.as_mut())
                    .options(EngineOptions {
                        reference_queue,
                        ..EngineOptions::default()
                    })
                    .session();
                let mut mutated = false;
                for job in &inst.jobs {
                    if !mutated && job.release.seconds() > cut * horizon {
                        // Pause mid-stream (mid-bucket), churn the
                        // platform, and resume: join units, retune a live
                        // link, drop the cloud again before any decide
                        // can commit to it.
                        let t = Time::new(cut * horizon);
                        if t > session.now() {
                            let _ = session.run_until(t).expect("advance to cut");
                        }
                        let e = session.add_edge(0.8).expect("join edge");
                        let k = session.add_cloud(1.7).expect("join cloud");
                        session.set_link(e, 0.6).expect("retune new link");
                        session.set_link(EdgeId(0), 0.9).expect("retune live link");
                        session.remove_cloud(k).expect("leave cloud");
                        mutated = true;
                    }
                    if job.release > session.now() {
                        let _ = session.run_until(job.release).expect("session advance");
                    }
                    session.submit(*job).expect("valid job");
                }
                session.drain().expect("drains");
                session.into_outcome()
            };
            let calendar = run(false);
            let heap = run(true);
            prop_assert_eq!(
                &calendar.schedule,
                &heap.schedule,
                "{} schedule differs across queues under mid-run mutation",
                kind
            );
            prop_assert_eq!(
                calendar.stats.restarts,
                heap.stats.restarts,
                "{} restarts differ across queues under mid-run mutation",
                kind
            );
        }
    }

    /// Tombstones are inert: join two extra units before the run and
    /// remove them again — the schedule must match a plain streamed run
    /// that never saw them. (Extra units are appended last, so the unit
    /// ids of the real platform are untouched.)
    #[test]
    fn pre_start_add_then_remove_is_inert(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
    ) {
        let inst = release_sorted(&inst);
        let empty = Instance::new(inst.spec.clone(), Vec::new()).expect("empty instance");
        for kind in PolicyKind::ALL {
            let run = |mutate: bool| {
                let mut policy = kind.build(policy_seed);
                let mut session = Simulation::of(&empty).policy(policy.as_mut()).session();
                if mutate {
                    let j = session.add_edge(0.7).expect("join edge");
                    let k = session.add_cloud(2.5).expect("join cloud");
                    session.remove_edge(j).expect("leave edge");
                    session.remove_cloud(k).expect("leave cloud");
                }
                for job in &inst.jobs {
                    if job.release > session.now() {
                        let _ = session.run_until(job.release).expect("session advance");
                    }
                    session.submit(*job).expect("valid job");
                }
                session.drain().expect("drains");
                session.into_outcome()
            };
            let plain = run(false);
            let churned = run(true);
            prop_assert_eq!(
                &churned.schedule.completion,
                &plain.schedule.completion,
                "{} completions differ under inert churn",
                kind
            );
            prop_assert_eq!(
                &churned.schedule.alloc,
                &plain.schedule.alloc,
                "{} allocations differ under inert churn",
                kind
            );
            prop_assert_eq!(
                churned.stats.restarts,
                plain.stats.restarts,
                "{} restarts differ under inert churn",
                kind
            );
        }
    }
}
