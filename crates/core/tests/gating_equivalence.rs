//! Decision-epoch gating and incremental policy state are pure
//! optimizations: for every registry policy, over random Kang / CCR
//! workloads and seeded fault plans, the gated + incremental engine run
//! must produce a bit-identical [`Schedule`] (and matching discrete
//! stats) to a reference run with gating disabled and the policies in
//! fresh-recompute mode ([`PolicyKind::build_reference`]).
//!
//! The reference run also uses the reference binary-heap event queue
//! (`reference_queue: true`) while the optimized run uses the calendar
//! queue, so every case doubles as a whole-engine differential test of
//! the two queue implementations.

use mmsec_core::PolicyKind;
use mmsec_faults::FaultConfig;
use mmsec_platform::{EngineOptions, Instance, Simulation};
use mmsec_sim::Time;
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

/// Workload family × size × generator seed, kept small so the whole
/// registry × fault matrix stays fast under proptest's case count.
fn arb_instance() -> impl Strategy<Value = Instance> {
    let kang = (2usize..30, 0u64..1000).prop_map(|(n, seed)| {
        KangConfig {
            num_edge: 4,
            num_cloud: 3,
            n,
            ..KangConfig::default()
        }
        .generate(seed)
    });
    let ccr = (2usize..30, 0u64..1000, 1usize..4).prop_map(|(n, seed, num_cloud)| {
        RandomCcrConfig {
            n,
            num_cloud,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(seed)
    });
    prop_oneof![kang, ccr]
}

/// `None` = fault-free; `Some((mtbf, mttr, seed))` = a uniform
/// exponential crash/recover model compiled against the instance.
fn arb_faults() -> impl Strategy<Value = Option<(f64, f64, u64)>> {
    prop_oneof![
        2 => Just(None),
        3 => (20.0f64..200.0, 1.0f64..10.0, 0u64..1000).prop_map(Some),
    ]
}

/// Runs one (instance, policy, faults) point twice — optimized and
/// reference — and asserts bit-identical outcomes.
fn assert_equivalent(
    inst: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    faults: Option<(f64, f64, u64)>,
) -> Result<(), TestCaseError> {
    let mut fast = kind.build(policy_seed);
    let mut reference = kind.build_reference(policy_seed);
    let gated = EngineOptions::default();
    prop_assert!(gated.decision_gating);
    prop_assert!(!gated.reference_queue); // optimized side: calendar queue
    let ungated = EngineOptions {
        decision_gating: false,
        reference_queue: true,
        ..EngineOptions::default()
    };
    let (a, b) = match faults {
        None => (
            Simulation::of(inst)
                .policy(fast.as_mut())
                .options(gated)
                .run(),
            Simulation::of(inst)
                .policy(reference.as_mut())
                .options(ungated)
                .run(),
        ),
        Some((mtbf, mttr, fault_seed)) => {
            let cfg = FaultConfig::uniform_exponential(
                inst.spec.num_edge(),
                inst.spec.num_cloud(),
                mtbf,
                mttr,
            );
            let plan = cfg.compile(fault_seed, Time::new(1e5));
            (
                Simulation::of(inst)
                    .policy(fast.as_mut())
                    .options(gated)
                    .faults(&plan)
                    .run(),
                Simulation::of(inst)
                    .policy(reference.as_mut())
                    .options(ungated)
                    .faults(&plan)
                    .run(),
            )
        }
    };
    match (a, b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(&a.schedule, &b.schedule, "{} schedule differs", kind);
            prop_assert_eq!(a.stats.events, b.stats.events, "{} event count", kind);
            prop_assert_eq!(a.stats.restarts, b.stats.restarts, "{} restarts", kind);
            // The reference run decides at every event; the gated run may
            // skip but must account for every event exactly once.
            prop_assert_eq!(b.stats.decides, b.stats.events);
            prop_assert_eq!(b.stats.decide_skips, 0);
            prop_assert_eq!(a.stats.decides + a.stats.decide_skips, a.stats.events);
        }
        // Both runs must fail identically (e.g. stalled on a dead unit).
        (a, b) => prop_assert_eq!(a.map(|o| o.schedule), b.map(|o| o.schedule)),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: gated + incremental ≡ ungated + recompute,
    /// for the whole policy registry, with and without faults.
    #[test]
    fn gated_incremental_equals_fresh_recompute(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        faults in arb_faults(),
    ) {
        for kind in PolicyKind::ALL {
            assert_equivalent(&inst, kind, policy_seed, faults)?;
        }
    }
}

/// Deterministic spot-check on a mid-size instance (bigger than the
/// proptest sizes, so gating actually skips a meaningful share of
/// events) — also pins the skip accounting invariant.
#[test]
fn gating_skips_events_on_larger_instances_without_changing_schedules() {
    let inst = RandomCcrConfig {
        n: 200,
        ..RandomCcrConfig::default()
    }
    .generate(7);
    let mut skipped_anywhere = false;
    for kind in PolicyKind::ALL {
        let mut fast = kind.build(3);
        let mut reference = kind.build_reference(3);
        let a = Simulation::of(&inst).policy(fast.as_mut()).run().unwrap();
        let b = Simulation::of(&inst)
            .policy(reference.as_mut())
            .options(EngineOptions {
                decision_gating: false,
                reference_queue: true,
                ..EngineOptions::default()
            })
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule, "{kind} schedule differs");
        assert_eq!(a.stats.decides + a.stats.decide_skips, a.stats.events);
        skipped_anywhere |= a.stats.decide_skips > 0;
    }
    assert!(
        skipped_anywhere,
        "no policy skipped a single decide at n=200 — gating is inert"
    );
}
