//! Continuum topologies generalize the paper's flat platform *exactly*.
//!
//! Headline property: a depth-1 tier graph with unit hop factors is a
//! **bit-identical zero-cost special case** of the flat platform — not
//! approximately equal, byte-for-byte the same schedules. This holds
//! because every path factor on such a platform is exactly `1.0`, and
//! `x * 1.0` is bitwise `x` (and `1.0 / 1.0` is exactly `1.0`) in IEEE
//! 754, so the tiered pricing code degenerates to the flat code with no
//! rounding drift anywhere: stretch denominators, forecasts, engine comm
//! rates, and the placement pricing classes.
//!
//! The property runs across the whole policy registry and with/without
//! compiled fault plans, so it pins every layer that consumes the tier
//! topology (`crates/core` placement, the projection forecasts, the
//! engine's comm-rate hook, and the validity checker's path-scaled
//! volume requirements).

use mmsec_core::PolicyKind;
use mmsec_faults::FaultConfig;
use mmsec_platform::{
    validate, CloudId, EngineOptions, Instance, PlatformSpec, Simulation, Target,
};
use mmsec_sim::Time;
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

/// Workload family × size × generator seed (mirrors the
/// platform-equivalence sizes: small enough for registry × fault sweeps).
fn arb_instance() -> impl Strategy<Value = Instance> {
    let kang = (2usize..25, 0u64..1000).prop_map(|(n, seed)| {
        KangConfig {
            num_edge: 4,
            num_cloud: 3,
            n,
            ..KangConfig::default()
        }
        .generate(seed)
    });
    let ccr = (2usize..25, 0u64..1000, 1usize..4).prop_map(|(n, seed, num_cloud)| {
        RandomCcrConfig {
            n,
            num_cloud,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(seed)
    });
    prop_oneof![kang, ccr]
}

/// `None` = fault-free; `Some((mtbf, mttr, seed))` = a uniform
/// exponential crash/recover model compiled against the instance.
fn arb_faults() -> impl Strategy<Value = Option<(f64, f64, u64)>> {
    prop_oneof![
        2 => Just(None),
        3 => (20.0f64..200.0, 1.0f64..10.0, 0u64..1000).prop_map(Some),
    ]
}

/// The same platform, re-expressed as a depth-1 tier graph with unit hop
/// factors: every cloud sits one hop away at link-time factor 1.0 both
/// ways — exactly the flat model's pricing.
fn tiered_twin(inst: &Instance) -> Instance {
    let spec = &inst.spec;
    let mut b = PlatformSpec::builder()
        .edges(spec.edges().map(|j| spec.edge_speed(j)))
        .tier(1.0, 1.0)
        .clouds(spec.clouds().map(|k| spec.cloud_speed(k)));
    for k in spec.clouds() {
        for w in spec.cloud_unavailability(k).iter() {
            b = b.unavailability(k, *w);
        }
    }
    let twin = b.build();
    assert!(twin.has_tiers(), "twin must carry an explicit tier graph");
    Instance::new(twin, inst.jobs.clone()).expect("twin stays valid")
}

fn run_batch(
    inst: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    faults: Option<(f64, f64, u64)>,
) -> Result<mmsec_platform::RunOutcome, mmsec_platform::EngineError> {
    let spec = &inst.spec;
    let plan = faults.map(|(mtbf, mttr, fault_seed)| {
        FaultConfig::uniform_exponential(spec.num_edge(), spec.num_cloud(), mtbf, mttr)
            .compile(fault_seed, Time::new(1e5))
    });
    let mut policy = kind.build(policy_seed);
    let mut sim = Simulation::of(inst)
        .policy(policy.as_mut())
        .options(EngineOptions::default());
    if let Some(plan) = &plan {
        sim = sim.faults(plan);
    }
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Headline: flat ≡ tiered(depth = 1, hop = (1, 1)), bit-identical,
    /// for every registered policy, with and without fault plans.
    #[test]
    fn flat_equals_unit_depth_one_tiers(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        faults in arb_faults(),
    ) {
        let twin = tiered_twin(&inst);
        for kind in PolicyKind::ALL {
            let flat = run_batch(&inst, kind, policy_seed, faults);
            let tiered = run_batch(&twin, kind, policy_seed, faults);
            match (flat, tiered) {
                (Ok(flat), Ok(tiered)) => {
                    prop_assert_eq!(
                        &flat.schedule,
                        &tiered.schedule,
                        "{} schedule differs between flat and unit-tiered",
                        kind
                    );
                    prop_assert_eq!(
                        flat.stats.restarts,
                        tiered.stats.restarts,
                        "{} restarts differ",
                        kind
                    );
                }
                (flat, tiered) => {
                    prop_assert_eq!(
                        flat.map(|_| ()).err(),
                        tiered.map(|_| ()).err(),
                        "{} failure mode differs",
                        kind
                    );
                }
            }
        }
    }

    /// Tiered schedules satisfy every §III-B constraint, including the
    /// path-scaled transfer volumes, on a genuinely non-trivial topology
    /// (two tiers, non-unit hop factors, clouds at both depths).
    #[test]
    fn deep_tiered_runs_validate(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        hop_up in 1.1f64..4.0,
        hop_dn in 1.1f64..4.0,
    ) {
        let spec = &inst.spec;
        if spec.num_cloud() < 2 {
            return Ok(());
        }
        // Split the clouds across two tiers: first cloud near, rest deep.
        let speeds: Vec<f64> = spec.clouds().map(|k| spec.cloud_speed(k)).collect();
        let deep = PlatformSpec::builder()
            .edges(spec.edges().map(|j| spec.edge_speed(j)))
            .tier(1.0, 1.0)
            .cloud(speeds[0])
            .tier(hop_up, hop_dn)
            .clouds(speeds[1..].iter().copied())
            .build();
        let deep_inst = Instance::new(deep, inst.jobs.clone()).expect("deep twin valid");
        for kind in PolicyKind::ALL {
            let out = run_batch(&deep_inst, kind, policy_seed, None)
                .expect("fault-free runs complete");
            let violations = validate(&deep_inst, &out.schedule);
            prop_assert!(
                violations.is_ok(),
                "{} produced violations on a 2-tier platform: {:?}",
                kind,
                violations.unwrap_err()
            );
        }
    }
}

/// A pre-start hop retune changes placement the way the model says it
/// must: pricing the (only) hop sky-high strands comm-heavy jobs on their
/// edge; unit pricing lets them offload.
#[test]
fn set_hop_redirects_offloading() {
    let build = || {
        let spec = PlatformSpec::builder()
            .edges(vec![0.05])
            .tier(1.0, 1.0)
            .cloud(1.0)
            .build();
        // Comm-heavy job: at hop factor 1 the cloud path (0.5+4+0.5 = 5)
        // beats the slow edge (4/0.05 = 80); at hop factor 100 the cloud
        // path costs 0.5·100 + 4 + 0.5·100 = 104 and loses.
        Instance::new(
            spec,
            vec![mmsec_platform::Job {
                origin: mmsec_platform::EdgeId(0),
                release: Time::new(0.0),
                work: 4.0,
                up: 0.5,
                dn: 0.5,
            }],
        )
        .expect("valid instance")
    };
    let run = |retune: bool| {
        let inst = build();
        let mut policy = PolicyKind::Greedy.build(0);
        let mut session = Simulation::of(&inst).policy(policy.as_mut()).session();
        if retune {
            session.set_hop(0, 100.0, 100.0).expect("hop retune");
        }
        session.drain().expect("drains");
        session.into_outcome()
    };
    let cheap = run(false);
    let pricey = run(true);
    assert_eq!(
        cheap.schedule.alloc[0],
        Some(Target::Cloud(CloudId(0))),
        "unit hop pricing must offload the comm-heavy job"
    );
    assert_eq!(
        pricey.schedule.alloc[0],
        Some(Target::Edge),
        "a sky-high hop must strand the job on its edge"
    );
}

/// `set_hop` errors surface through the session API unchanged.
#[test]
fn session_set_hop_rejects_flat_platforms() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let inst = Instance::new(spec, Vec::new()).expect("valid instance");
    let mut policy = PolicyKind::Srpt.build(0);
    let mut session = Simulation::of(&inst).policy(policy.as_mut()).session();
    assert!(matches!(
        session.set_hop(0, 2.0, 2.0),
        Err(mmsec_platform::PlatformError::UnknownHop { hop: 0 })
    ));
}
