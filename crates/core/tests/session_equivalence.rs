//! The resumable `Session` is an exact generalization of the batch
//! engine: feeding a workload one job at a time, pausing at every
//! release instant, must produce a bit-identical schedule to the batch
//! `Simulation::run` over the same instance, for every registry policy,
//! with and without fault plans. Pausing at *other* instants inserts
//! extra decision points, which the engine does not promise keep the
//! schedule bit-identical — those runs must still be §III-B-valid and
//! complete every job (second property below).
//!
//! Event *counts* are deliberately not compared: a paused session may
//! burn extra decision events at instants where the batch loop has none
//! (externally-imposed pauses) — the schedule and restart counts are the
//! observable contract.

use mmsec_core::PolicyKind;
use mmsec_faults::FaultConfig;
use mmsec_platform::{max_stretch, validate, EngineOptions, Instance, Simulation};
use mmsec_sim::Time;
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

/// Workload family × size × generator seed (the gating-equivalence
/// sizes, kept small for the registry × fault matrix).
fn arb_instance() -> impl Strategy<Value = Instance> {
    let kang = (2usize..30, 0u64..1000).prop_map(|(n, seed)| {
        KangConfig {
            num_edge: 4,
            num_cloud: 3,
            n,
            ..KangConfig::default()
        }
        .generate(seed)
    });
    let ccr = (2usize..30, 0u64..1000, 1usize..4).prop_map(|(n, seed, num_cloud)| {
        RandomCcrConfig {
            n,
            num_cloud,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(seed)
    });
    prop_oneof![kang, ccr]
}

/// `None` = fault-free; `Some((mtbf, mttr, seed))` = a uniform
/// exponential crash/recover model compiled against the instance.
fn arb_faults() -> impl Strategy<Value = Option<(f64, f64, u64)>> {
    prop_oneof![
        2 => Just(None),
        3 => (20.0f64..200.0, 1.0f64..10.0, 0u64..1000).prop_map(Some),
    ]
}

/// Reorders `inst`'s jobs by (release, original index) so that streaming
/// submission order matches job-id order. Both runs use the reordered
/// instance, so the comparison is still apples to apples.
fn release_sorted(inst: &Instance) -> Instance {
    let mut jobs = inst.jobs.clone();
    jobs.sort_by(|a, b| a.release.partial_cmp(&b.release).expect("finite releases"));
    Instance::new(inst.spec.clone(), jobs).expect("reordering preserves validity")
}

fn assert_session_equals_batch(
    inst: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    faults: Option<(f64, f64, u64)>,
) -> Result<(), TestCaseError> {
    let inst = release_sorted(inst);
    let plan = faults.map(|(mtbf, mttr, fault_seed)| {
        FaultConfig::uniform_exponential(inst.spec.num_edge(), inst.spec.num_cloud(), mtbf, mttr)
            .compile(fault_seed, Time::new(1e5))
    });

    // Batch: everything known up front — on the reference binary-heap
    // event queue, so the comparison against the streamed session (on the
    // calendar queue) also differentially pins the two queue variants.
    let mut batch_policy = kind.build(policy_seed);
    let mut sim = Simulation::of(&inst)
        .policy(batch_policy.as_mut())
        .options(EngineOptions {
            reference_queue: true,
            ..EngineOptions::default()
        });
    if let Some(plan) = &plan {
        sim = sim.faults(plan);
    }
    let batch = sim.run();

    // Session: an empty platform fed one job per release.
    let empty = Instance::new(inst.spec.clone(), Vec::new()).expect("empty instance");
    let mut stream_policy = kind.build(policy_seed);
    let mut sim = Simulation::of(&empty).policy(stream_policy.as_mut());
    if let Some(plan) = &plan {
        sim = sim.faults(plan);
    }
    let mut session = sim.session();
    for job in &inst.jobs {
        if job.release > session.now() {
            let _ = session.run_until(job.release).expect("session advance");
        }
        session.submit(*job).expect("valid job");
    }
    let streamed = session.drain();
    match (batch, streamed) {
        (Ok(batch), Ok(())) => {
            let out = session.into_outcome();
            prop_assert_eq!(&out.schedule, &batch.schedule, "{} schedule differs", kind);
            prop_assert_eq!(
                out.stats.restarts,
                batch.stats.restarts,
                "{} restarts",
                kind
            );
        }
        // Both paths must fail identically (e.g. stalled on a dead unit).
        (batch, streamed) => {
            prop_assert_eq!(
                batch.map(|_| ()).err(),
                streamed.err(),
                "{} failure mode differs",
                kind
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: stream-fed session ≡ batch simulate, for
    /// the whole policy registry, with and without fault plans.
    #[test]
    fn session_fed_per_release_equals_batch(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        faults in arb_faults(),
    ) {
        for kind in PolicyKind::ALL {
            assert_session_equals_batch(&inst, kind, policy_seed, faults)?;
        }
    }

    /// Pausing at arbitrary instants between releases inserts extra
    /// decision points, which the engine does *not* promise keep the
    /// schedule bit-identical (see the session module docs) — but the
    /// result must still be a valid schedule that completes every job,
    /// and its max stretch must stay finite.
    #[test]
    fn paused_sessions_still_produce_valid_schedules(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
    ) {
        let inst = release_sorted(&inst);
        for kind in PolicyKind::ALL {
            let empty = Instance::new(inst.spec.clone(), Vec::new()).expect("empty instance");
            let mut policy = kind.build(policy_seed);
            let mut session = Simulation::of(&empty).policy(policy.as_mut()).session();
            let mut prev = Time::ZERO;
            for job in &inst.jobs {
                if job.release > prev {
                    let mid = Time::new((prev.seconds() + job.release.seconds()) / 2.0);
                    let _ = session.run_until(mid).expect("session advance");
                }
                if job.release > session.now() {
                    let _ = session.run_until(job.release).expect("session advance");
                }
                session.submit(*job).expect("valid job");
                prev = job.release;
            }
            session.drain().expect("paused session drains");
            let out = session.into_outcome();
            prop_assert!(
                validate(&inst, &out.schedule).is_ok(),
                "{} paused schedule invalid", kind
            );
            let stretch = max_stretch(&inst, &out.schedule);
            prop_assert!(stretch.is_finite() && stretch >= 1.0, "{} stretch {}", kind, stretch);
        }
    }
}

/// Deterministic spot-check at a size the proptest strategy never
/// reaches.
#[test]
fn large_streamed_run_matches_batch() {
    let inst = release_sorted(
        &RandomCcrConfig {
            n: 120,
            num_cloud: 3,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(11),
    );
    for kind in PolicyKind::ALL {
        let mut batch_policy = kind.build(5);
        let batch = Simulation::of(&inst)
            .policy(batch_policy.as_mut())
            .run()
            .unwrap();

        let empty = Instance::new(inst.spec.clone(), Vec::new()).unwrap();
        let mut stream_policy = kind.build(5);
        let mut session = Simulation::of(&empty)
            .policy(stream_policy.as_mut())
            .session();
        for job in &inst.jobs {
            if job.release > session.now() {
                session.run_until(job.release).unwrap();
            }
            session.submit(*job).unwrap();
        }
        session.drain().unwrap();
        let out = session.into_outcome();
        assert_eq!(out.schedule, batch.schedule, "{kind} schedule differs");
        assert_eq!(
            out.stats.restarts, batch.stats.restarts,
            "{kind} restarts differ"
        );
    }
}
