//! Telemetry is pure observation: for every registry policy, over random
//! Kang / CCR workloads and seeded fault plans, a run with the full
//! telemetry stack attached — metrics recorder + flight recorder fanned
//! out to both the engine and the policy, plus the phase profiler — must
//! produce a bit-identical [`Schedule`] (and matching discrete stats) to
//! the bare, unobserved run.

use mmsec_core::PolicyKind;
use mmsec_faults::FaultConfig;
use mmsec_platform::obs::{Fanout, FlightRecorder, MetricsRecorder, PhaseProfiler, Shared};
use mmsec_platform::{Instance, Simulation};
use mmsec_sim::Time;
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

/// Workload family × size × generator seed, kept small so the whole
/// registry × fault matrix stays fast under proptest's case count.
fn arb_instance() -> impl Strategy<Value = Instance> {
    let kang = (2usize..30, 0u64..1000).prop_map(|(n, seed)| {
        KangConfig {
            num_edge: 4,
            num_cloud: 3,
            n,
            ..KangConfig::default()
        }
        .generate(seed)
    });
    let ccr = (2usize..30, 0u64..1000, 1usize..4).prop_map(|(n, seed, num_cloud)| {
        RandomCcrConfig {
            n,
            num_cloud,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(seed)
    });
    prop_oneof![kang, ccr]
}

/// `None` = fault-free; `Some((mtbf, mttr, seed))` = a uniform
/// exponential crash/recover model compiled against the instance.
fn arb_faults() -> impl Strategy<Value = Option<(f64, f64, u64)>> {
    prop_oneof![
        2 => Just(None),
        3 => (20.0f64..200.0, 1.0f64..10.0, 0u64..1000).prop_map(Some),
    ]
}

/// Runs one (instance, policy, faults) point twice — bare and with every
/// telemetry sink attached — and asserts bit-identical outcomes.
fn assert_telemetry_neutral(
    inst: &Instance,
    kind: PolicyKind,
    policy_seed: u64,
    faults: Option<(f64, f64, u64)>,
) -> Result<(), TestCaseError> {
    let plan = faults.map(|(mtbf, mttr, fault_seed)| {
        FaultConfig::uniform_exponential(inst.spec.num_edge(), inst.spec.num_cloud(), mtbf, mttr)
            .compile(fault_seed, Time::new(1e5))
    });

    let mut bare_policy = kind.build(policy_seed);
    let bare = {
        let mut sim = Simulation::of(inst).policy(bare_policy.as_mut());
        if let Some(plan) = &plan {
            sim = sim.faults(plan);
        }
        sim.run()
    };

    let metrics = Shared::new(MetricsRecorder::new());
    let flight = Shared::new(FlightRecorder::with_capacity(64));
    let mut fan = Fanout::new();
    fan.push(Box::new(metrics.clone()));
    fan.push(Box::new(flight.clone()));
    let shared_fan = Shared::new(fan);
    let mut loaded_policy = kind.build(policy_seed);
    loaded_policy.attach_observer(shared_fan.handle());
    let mut engine_side = shared_fan.clone();
    let mut profiler = PhaseProfiler::new();
    let loaded = {
        let mut sim = Simulation::of(inst)
            .policy(loaded_policy.as_mut())
            .observer(&mut engine_side)
            .profiler(&mut profiler);
        if let Some(plan) = &plan {
            sim = sim.faults(plan);
        }
        sim.run()
    };

    match (bare, loaded) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(&a.schedule, &b.schedule, "{} schedule differs", kind);
            prop_assert_eq!(a.stats.events, b.stats.events, "{} event count", kind);
            prop_assert_eq!(a.stats.decides, b.stats.decides, "{} decides", kind);
            prop_assert_eq!(
                a.stats.decide_skips,
                b.stats.decide_skips,
                "{} decide skips",
                kind
            );
            prop_assert_eq!(a.stats.restarts, b.stats.restarts, "{} restarts", kind);
            // The profiler's own counters must agree with the engine's.
            prop_assert_eq!(profiler.decides(), b.stats.decides);
            prop_assert_eq!(profiler.decide_skips(), b.stats.decide_skips);
            prop_assert!(profiler.steps() > 0);
            // And the sinks must actually have observed the run.
            prop_assert!(flight.with(|f| f.total_seen()) > 0);
            prop_assert!(metrics.with(|m| m.stretch().count()) > 0);
        }
        // Both runs must fail identically (e.g. stalled on a dead unit).
        (a, b) => prop_assert_eq!(a.map(|o| o.schedule), b.map(|o| o.schedule)),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: telemetry attached ≡ bare run, for the
    /// whole policy registry, with and without faults.
    #[test]
    fn telemetry_attached_equals_bare_run(
        inst in arb_instance(),
        policy_seed in 0u64..1000,
        faults in arb_faults(),
    ) {
        for kind in PolicyKind::ALL {
            assert_telemetry_neutral(&inst, kind, policy_seed, faults)?;
        }
    }
}

/// Deterministic spot-check on a mid-size instance: the fencepost span
/// accounting must cover essentially the whole measured loop wall time
/// (the `--profile` artifact's headline guarantee), and every non-fault
/// phase must have fired.
#[test]
fn profiler_phase_spans_cover_the_loop_wall_time() {
    use mmsec_platform::obs::EnginePhase;
    let inst = RandomCcrConfig {
        n: 200,
        ..RandomCcrConfig::default()
    }
    .generate(7);
    let mut policy = PolicyKind::Srpt.build(3);
    let mut profiler = PhaseProfiler::new();
    Simulation::of(&inst)
        .policy(policy.as_mut())
        .profiler(&mut profiler)
        .run()
        .unwrap();
    assert!(profiler.steps() > 0);
    assert_eq!(profiler.policy(), "srpt");
    for phase in [
        EnginePhase::EventPop,
        EnginePhase::Decide,
        EnginePhase::Sanitize,
        EnginePhase::Grant,
        EnginePhase::Commit,
    ] {
        assert!(
            profiler.phase(phase).count() > 0,
            "phase {} never recorded",
            phase.label()
        );
    }
    // No faults injected, so the fault-replay phase must stay empty.
    assert_eq!(profiler.phase(EnginePhase::FaultReplay).count(), 0);
    let coverage = profiler.coverage();
    assert!(
        coverage > 0.95 && coverage <= 1.0 + 1e-9,
        "phase spans cover {:.1}% of the loop wall time",
        coverage * 100.0
    );
}
