//! Name-based construction of scheduling policies (used by the experiment
//! harness and the `repro` CLI).

use crate::baselines::{CloudOnly, Fcfs, RandomSticky};
use crate::edge_only::EdgeOnly;
use crate::greedy::Greedy;
use crate::srpt::Srpt;
use crate::ssf_edf::SsfEdf;
use mmsec_platform::OnlineScheduler;

/// The policies of the paper's evaluation (§VI) plus the extra baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// §V-A baseline.
    EdgeOnly,
    /// §V-B.
    Greedy,
    /// §V-C.
    Srpt,
    /// §V-D (the paper's best heuristic).
    SsfEdf,
    /// Extra baseline: first-come-first-served, sticky best placement.
    Fcfs,
    /// Extra baseline: everything delegated to the cloud.
    CloudOnly,
    /// Extra baseline: random sticky placement.
    Random,
}

impl PolicyKind {
    /// The four policies evaluated in the paper, in presentation order.
    pub const PAPER: [PolicyKind; 4] = [
        PolicyKind::EdgeOnly,
        PolicyKind::Greedy,
        PolicyKind::Srpt,
        PolicyKind::SsfEdf,
    ];

    /// The cloud-using policies of Figure 2(b) (Edge-Only is off-scale
    /// under load and omitted by the paper).
    pub const CLOUD_USING: [PolicyKind; 3] =
        [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf];

    /// All policies known to the registry.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::EdgeOnly,
        PolicyKind::Greedy,
        PolicyKind::Srpt,
        PolicyKind::SsfEdf,
        PolicyKind::Fcfs,
        PolicyKind::CloudOnly,
        PolicyKind::Random,
    ];

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::EdgeOnly => "edge-only",
            PolicyKind::Greedy => "greedy",
            PolicyKind::Srpt => "srpt",
            PolicyKind::SsfEdf => "ssf-edf",
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::CloudOnly => "cloud-only",
            PolicyKind::Random => "random",
        }
    }

    /// Parses a canonical name.
    pub fn parse(name: &str) -> Option<PolicyKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Instantiates the policy with default parameters (`seed` is only
    /// used by stochastic policies).
    pub fn build(self, seed: u64) -> Box<dyn OnlineScheduler> {
        match self {
            PolicyKind::EdgeOnly => Box::new(EdgeOnly::new()),
            PolicyKind::Greedy => Box::new(Greedy::new()),
            PolicyKind::Srpt => Box::new(Srpt::new()),
            PolicyKind::SsfEdf => Box::new(SsfEdf::new()),
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::CloudOnly => Box::new(CloudOnly::new()),
            PolicyKind::Random => Box::new(RandomSticky::new(seed)),
        }
    }

    /// Instantiates the policy in *reference* mode: incremental state
    /// maintenance and decision-epoch gating disabled, so every event
    /// triggers a full recompute. Schedules must be bit-identical to
    /// [`PolicyKind::build`] — the equivalence proptests compare the two.
    pub fn build_reference(self, seed: u64) -> Box<dyn OnlineScheduler> {
        match self {
            PolicyKind::EdgeOnly => Box::new(EdgeOnly::new().with_recompute()),
            PolicyKind::SsfEdf => Box::new(SsfEdf::new().with_recompute()),
            other => other.build(seed),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in PolicyKind::ALL {
            let policy = kind.build(1);
            assert_eq!(policy.name(), kind.name());
        }
    }

    #[test]
    fn paper_set_is_a_subset_of_all() {
        for kind in PolicyKind::PAPER {
            assert!(PolicyKind::ALL.contains(&kind));
        }
        for kind in PolicyKind::CLOUD_USING {
            assert!(PolicyKind::PAPER.contains(&kind));
        }
    }
}
