//! Shared placement machinery for the event-driven heuristics.
//!
//! Greedy (§V-B) and SRPT (§V-C) both repeat, at every event: *among jobs
//! that can start right now on some free resource, pick the best (job,
//! resource) pair, claim the resources, and iterate*. [`RoundState`]
//! tracks one such decision round:
//!
//! * a boolean map of resources already claimed *for this instant* (a job
//!   can only be activated if its first phase's resources are free), and
//! * a [`Projection`] of earliest-free times that accounts for the
//!   *durations* of everything claimed earlier in the round — so that a
//!   completion estimate on cloud `k` reflects the work already queued on
//!   `k` this round. Without this, all of a homogeneous cloud's
//!   processors look identical and every job piles onto the first one.

use mmsec_platform::projection::Projection;
use mmsec_platform::resource::ResourceMap;
use mmsec_platform::{JobId, Phase, SimView, Target};
use mmsec_sim::time::approx;
use mmsec_sim::Time;

/// Phase the job would run first if placed on `target` *now*: the current
/// phase when continuing on its committed target, the first non-empty
/// phase when (re)starting fresh.
pub fn first_phase(view: &SimView<'_>, id: JobId, target: Target) -> Option<Phase> {
    let st = &view.jobs[id.0];
    let job = view.instance.job(id);
    if st.committed == Some(target) {
        return st.current_phase(job, target);
    }
    match target {
        Target::Edge => approx::positive(job.work).then_some(Phase::Compute),
        Target::Cloud(_) => {
            if approx::positive(job.up) {
                Some(Phase::Uplink)
            } else if approx::positive(job.work) {
                Some(Phase::Compute)
            } else if approx::positive(job.dn) {
                Some(Phase::Downlink)
            } else {
                None
            }
        }
    }
}

/// A placement option that can start immediately.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StartOption {
    /// Where the job would run.
    pub target: Target,
    /// Completion estimate from the round's projection (accounts for
    /// everything claimed earlier in the round; from-scratch volumes when
    /// `target` differs from the committed resource).
    pub completion: Time,
}

/// State of one decision round (one event).
///
/// Two layers of occupancy information:
///
/// * the **projection** holds only what has been *claimed* this round —
///   it drives the job-vs-job comparison (so a short job can still rank
///   ahead of a long committed job and preempt it, as SRPT requires);
/// * the **backlog** counts the remaining CPU work of committed-but-not-
///   yet-claimed jobs — it drives the *choice of target within one job*,
///   so that a fresh job facing twenty homogeneous cloud processors
///   prefers one whose CPU is not mid-way through someone else's job.
#[derive(Clone, Debug)]
pub struct RoundState {
    proj: Projection,
    busy_now: ResourceMap<bool>,
    /// Remaining CPU-seconds of unclaimed committed jobs, per CPU.
    backlog: ResourceMap<f64>,
    /// Which CPU each unclaimed committed job contributes backlog to.
    contribution: Vec<Option<(mmsec_platform::resource::ResourceId, f64)>>,
}

impl RoundState {
    /// Fresh round: nothing claimed yet; backlog gathered from every
    /// pending job with progress on a committed target.
    pub fn new(view: &SimView<'_>) -> Self {
        let spec = view.spec();
        let mut backlog = ResourceMap::new(spec, 0.0f64);
        let mut contribution = vec![None; view.jobs.len()];
        for id in view.pending_jobs() {
            let st = &view.jobs[id.0];
            let has_progress = st.up_done + st.work_done + st.dn_done > 0.0;
            let Some(target) = st.committed else { continue };
            if !has_progress {
                continue;
            }
            let job = view.instance.job(id);
            let (cpu, amount) = match target {
                Target::Edge => (
                    mmsec_platform::resource::ResourceId::EdgeCpu(job.origin),
                    st.remaining_work(job) / spec.edge_speed(job.origin),
                ),
                Target::Cloud(k) => (
                    mmsec_platform::resource::ResourceId::CloudCpu(k),
                    st.remaining_work(job) / spec.cloud_speed(k),
                ),
            };
            backlog[cpu] += amount;
            contribution[id.0] = Some((cpu, amount));
        }
        RoundState {
            proj: Projection::from_view(view),
            busy_now: ResourceMap::new(spec, false),
            backlog,
            contribution,
        }
    }

    /// Backlog a candidate target's CPU carries, excluding `id`'s own
    /// contribution.
    fn foreign_backlog(&self, view: &SimView<'_>, id: JobId, target: Target) -> f64 {
        let job = view.instance.job(id);
        let cpu = match target {
            Target::Edge => mmsec_platform::resource::ResourceId::EdgeCpu(job.origin),
            Target::Cloud(k) => mmsec_platform::resource::ResourceId::CloudCpu(k),
        };
        let mut b = self.backlog[cpu];
        if let Some((own_cpu, amount)) = self.contribution[id.0] {
            if own_cpu == cpu {
                b -= amount;
            }
        }
        b.max(0.0)
    }

    /// Best (earliest-completion) target on which `id` can start
    /// immediately. Ties prefer the committed target (keeping progress),
    /// then the edge, then lower cloud indices — all deterministic.
    ///
    /// **Re-execution guard**: a job that has made progress on its
    /// committed target only accepts a *different* target when the
    /// from-scratch estimate there beats the *optimistic* continuation
    /// estimate (as if the committed resources freed right now). Waiting
    /// costs at least that optimistic estimate, so a restart failing the
    /// test can never pay off; without the guard, a job displaced for a
    /// single event restarts elsewhere, gets displaced again, and thrashes
    /// away all its progress.
    pub fn best_startable(&self, view: &SimView<'_>, id: JobId) -> Option<StartOption> {
        let st = &view.jobs[id.0];
        let job = view.instance.job(id);
        let spec = view.spec();
        let mut best: Option<StartOption> = None;

        let has_progress = st.up_done + st.work_done + st.dn_done > 0.0;
        let continuation_bar: Option<Time> = match st.committed {
            Some(t) if has_progress => {
                Some(view.now + Time::new(st.remaining_time_on(job, t, spec)))
            }
            _ => None,
        };

        // Track the penalized score of the incumbent best for the
        // target-choice comparison.
        let mut best_penalized = Time::new(f64::MAX);

        let mut consider = |target: Target| {
            if !view.target_available(job.origin, target) {
                return; // unit is down (fault injection): never place on it
            }
            let Some(phase) = first_phase(view, id, target) else {
                return;
            };
            if phase
                .resources(job, target)
                .iter()
                .any(|r| self.busy_now[r])
            {
                return;
            }
            let completion = self.proj.completion(job, st, target, spec, view.now);
            let penalized = completion + Time::new(self.foreign_backlog(view, id, target));
            if st.committed != Some(target) {
                if let Some(bar) = continuation_bar {
                    if penalized >= bar {
                        return; // restarting cannot beat waiting
                    }
                }
            }
            if penalized < best_penalized {
                best_penalized = penalized;
                best = Some(StartOption { target, completion });
            }
        };

        // Evaluation order implements the tie preference (strict `<`).
        if let Some(t) = st.committed {
            consider(t);
        }
        consider(Target::Edge);
        for k in spec.clouds() {
            consider(Target::Cloud(k));
        }
        best
    }

    /// Claims `target` for `id`: blocks the first phase's resources for
    /// this instant, books the job's whole remaining pipeline into the
    /// projection, and retires its backlog contribution (its future is
    /// now explicit in the projection).
    pub fn claim(&mut self, view: &SimView<'_>, id: JobId, target: Target) {
        let st = &view.jobs[id.0];
        let job = view.instance.job(id);
        let phase = first_phase(view, id, target).expect("claimed job has a phase to run");
        for r in phase.resources(job, target).iter() {
            debug_assert!(!self.busy_now[r], "double-claim of {r}");
            self.busy_now[r] = true;
        }
        self.proj.place(job, st, target, view.spec(), view.now);
        if let Some((cpu, amount)) = self.contribution[id.0].take() {
            self.backlog[cpu] = (self.backlog[cpu] - amount).max(0.0);
        }
    }
}

/// Stretch of `id` if it completes at `completion`.
pub fn stretch_at(view: &SimView<'_>, id: JobId, completion: Time) -> f64 {
    view.stretch_if_completed_at(id, completion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{CloudId, EdgeId, Instance, Job, JobState, PendingSet, PlatformSpec};

    fn fixture() -> (Instance, Vec<JobState>) {
        let spec = PlatformSpec::homogeneous_cloud(vec![0.5], 2);
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0), // edge 4, cloud 4
            Job::new(EdgeId(0), 0.0, 6.0, 1.0, 1.0), // edge 12, cloud 8
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); 2];
        for s in &mut states {
            s.released = true;
        }
        (inst, states)
    }

    #[test]
    fn first_phase_fresh_and_committed() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.0; // uplink complete on cloud 0
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(1.0), &states, &pending);
        assert_eq!(
            first_phase(&view, JobId(0), Target::Cloud(CloudId(0))),
            Some(Phase::Compute)
        );
        // Fresh start on cloud 1: uplink again.
        assert_eq!(
            first_phase(&view, JobId(0), Target::Cloud(CloudId(1))),
            Some(Phase::Uplink)
        );
        assert_eq!(
            first_phase(&view, JobId(0), Target::Edge),
            Some(Phase::Compute)
        );
    }

    #[test]
    fn best_startable_picks_earliest_completion() {
        let (inst, states) = fixture();
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let round = RoundState::new(&view);
        // Job 1 (6 work): edge 12, cloud 8 → cloud.
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Cloud(CloudId(0)));
        assert_eq!(opt.completion, Time::new(8.0));
        // Job 0: tie (4 vs 4); edge is evaluated before clouds, wins ties.
        let opt = round.best_startable(&view, JobId(0)).unwrap();
        assert_eq!(opt.target, Target::Edge);
    }

    #[test]
    fn claims_spread_over_homogeneous_clouds() {
        // THE regression this module guards against: with one cloud CPU
        // claimed, the next job must see cloud 0 as slower and pick
        // cloud 1 even though cloud 0's *ports* are free.
        let spec = PlatformSpec::homogeneous_cloud(vec![0.1], 2);
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0), // no comm: CPU only
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); 2];
        for s in &mut states {
            s.released = true;
        }
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let mut round = RoundState::new(&view);
        let first = round.best_startable(&view, JobId(0)).unwrap();
        assert_eq!(first.target, Target::Cloud(CloudId(0)));
        round.claim(&view, JobId(0), first.target);
        let second = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(
            second.target,
            Target::Cloud(CloudId(1)),
            "must not pile onto the claimed cloud"
        );
        assert_eq!(second.completion, Time::new(10.0));
    }

    #[test]
    fn busy_first_phase_resources_exclude_targets() {
        let (inst, states) = fixture();
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let mut round = RoundState::new(&view);
        // Claim job 0's uplink on cloud 0: EdgeOut(0) + CloudIn(0) are
        // busy now, so job 1 (which also needs EdgeOut(0) to reach any
        // cloud) can only start on the edge.
        round.claim(&view, JobId(0), Target::Cloud(CloudId(0)));
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Edge);
        // ... and if the edge CPU is claimed too, nothing can start.
        round.claim(&view, JobId(1), Target::Edge);
        let mut st2 = states.clone();
        st2.push(JobState {
            released: true,
            ..JobState::default()
        });
        let mut jobs2 = inst.jobs.clone();
        jobs2.push(Job::new(EdgeId(0), 0.0, 1.0, 1.0, 1.0));
        let inst2 = Instance::new(inst.spec.clone(), jobs2).unwrap();
        let pending2 = PendingSet::from_states(&inst2, &st2);
        let view2 = SimView::new(&inst2, Time::ZERO, &st2, &pending2);
        assert_eq!(round.best_startable(&view2, JobId(2)), None);
    }

    #[test]
    fn committed_target_preferred_on_tie() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(1)));
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(0)).unwrap();
        assert_eq!(opt.target, Target::Cloud(CloudId(1)));
    }

    #[test]
    fn committed_progress_counted_in_estimates() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.0;
        states[0].work_done = 1.0;
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(2.0), &states, &pending);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(0)).unwrap();
        // Continue on cloud 0: 1 work + 1 dn = 2 → completes at 4;
        // fresh anywhere would take ≥ 4.
        assert_eq!(opt.target, Target::Cloud(CloudId(0)));
        assert_eq!(opt.completion, Time::new(4.0));
    }

    #[test]
    fn down_units_are_never_placement_targets() {
        use mmsec_platform::Availability;
        let (inst, states) = fixture();
        let pending = PendingSet::from_states(&inst, &states);
        let mut avail = Availability::all_up(1, 2);
        // Job 1 prefers cloud 0 (see `best_startable_picks_earliest_
        // completion`); with cloud 0 down it must fall over to cloud 1,
        // and with the whole cloud down it must run locally.
        avail.cloud_up[0] = false;
        let view = SimView::new(&inst, Time::ZERO, &states, &pending).with_availability(&avail);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Cloud(CloudId(1)));

        avail.cloud_up[1] = false;
        let view = SimView::new(&inst, Time::ZERO, &states, &pending).with_availability(&avail);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Edge);

        // Everything down: nothing startable at all.
        avail.edge_up[0] = false;
        let view = SimView::new(&inst, Time::ZERO, &states, &pending).with_availability(&avail);
        let round = RoundState::new(&view);
        assert_eq!(round.best_startable(&view, JobId(1)), None);
    }

    #[test]
    fn stretch_estimate() {
        let (inst, states) = fixture();
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        assert!((stretch_at(&view, JobId(0), Time::new(6.0)) - 1.5).abs() < 1e-12);
    }
}
