//! Shared placement machinery for the event-driven heuristics.
//!
//! Greedy (§V-B) and SRPT (§V-C) both repeat, at every event: *among jobs
//! that can start right now on some free resource, pick the best (job,
//! resource) pair, claim the resources, and iterate*. [`RoundState`]
//! tracks one such decision round:
//!
//! * a boolean map of resources already claimed *for this instant* (a job
//!   can only be activated if its first phase's resources are free), and
//! * a [`Projection`] of earliest-free times that accounts for the
//!   *durations* of everything claimed earlier in the round — so that a
//!   completion estimate on cloud `k` reflects the work already queued on
//!   `k` this round. Without this, all of a homogeneous cloud's
//!   processors look identical and every job piles onto the first one.

use mmsec_platform::projection::{Forecast, Projection};
use mmsec_platform::resource::{ResourceId, ResourceMap};
use mmsec_platform::{CloudId, EdgeId, Job, JobId, JobState, Phase, SimView, Target};
use mmsec_sim::time::approx;
use mmsec_sim::Time;
use std::cell::Cell;

/// Phase the job would run first if placed on `target` *now*: the current
/// phase when continuing on its committed target, the first non-empty
/// phase when (re)starting fresh.
pub fn first_phase(view: &SimView<'_>, id: JobId, target: Target) -> Option<Phase> {
    let jobs = view.jobs;
    let job = view.job(id);
    if jobs.committed[id.0] == Some(target) {
        return jobs.current_phase(id.0, job, target);
    }
    match target {
        Target::Edge => approx::positive(job.work).then_some(Phase::Compute),
        Target::Cloud(_) => {
            if approx::positive(job.up) {
                Some(Phase::Uplink)
            } else if approx::positive(job.work) {
                Some(Phase::Compute)
            } else if approx::positive(job.dn) {
                Some(Phase::Downlink)
            } else {
                None
            }
        }
    }
}

/// Cross-job interference scope of one claim, recorded so later pops can
/// prove a cached [`StartOption`] survived it (see
/// [`RoundState::exact_since`]) or repair it against only what the claim
/// actually wrote (see [`RoundState::refresh_option`]).
///
/// Outside its own origin edge, a claim writes exactly two places: the
/// profiles/busy marks of its target cloud (`cloud`), and the backlog of
/// the cloud CPU it retired its committed contribution from
/// (`retired_cloud`). Both `None` means the claim was edge-confined — its
/// entire write set (busy mark, profile move, dirt, and retirement) sat
/// on `EdgeCpu(origin)`.
#[derive(Clone, Copy, Debug)]
struct ClaimScope {
    /// Origin edge of the claimed job.
    origin: usize,
    /// Cloud whose profiles (and busy marks) the claim moved; `None` for
    /// an edge claim.
    cloud: Option<CloudId>,
    /// Cloud CPU whose backlog the claim retired — the claimed job had
    /// committed cloud progress; `None` when the retirement was absent or
    /// sat on the claimant's own edge CPU.
    retired_cloud: Option<CloudId>,
}

/// A placement option that can start immediately.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StartOption {
    /// Where the job would run.
    pub target: Target,
    /// Completion estimate from the round's projection (accounts for
    /// everything claimed earlier in the round; from-scratch volumes when
    /// `target` differs from the committed resource).
    pub completion: Time,
    /// First phase the job would run on `target` — cached so
    /// [`RoundState::claim_option`] skips the `first_phase` recompute.
    pub(crate) phase: Phase,
    /// The winning candidate's full forecast — cached so claiming applies
    /// the already-computed reservations instead of forecasting again.
    pub(crate) forecast: Forecast,
}

/// State of one decision round (one event).
///
/// Two layers of occupancy information:
///
/// * the **projection** holds only what has been *claimed* this round —
///   it drives the job-vs-job comparison (so a short job can still rank
///   ahead of a long committed job and preempt it, as SRPT requires);
/// * the **backlog** counts the remaining CPU work of committed-but-not-
///   yet-claimed jobs — it drives the *choice of target within one job*,
///   so that a fresh job facing twenty homogeneous cloud processors
///   prefers one whose CPU is not mid-way through someone else's job.
#[derive(Clone, Debug)]
pub struct RoundState {
    proj: Projection,
    busy_now: ResourceMap<bool>,
    /// Remaining CPU-seconds of unclaimed committed jobs, per CPU.
    backlog: ResourceMap<f64>,
    /// Which CPU each unclaimed committed job contributes backlog to.
    contribution: Vec<Option<(mmsec_platform::resource::ResourceId, f64)>>,
    /// Jobs whose `contribution` entry was set this round, so `reset` can
    /// clear them without an O(n) sweep.
    contributors: Vec<usize>,
    /// Cloud ids grouped by exact (speed, tier-path) triple — bitwise on
    /// the floats, ascending within each group. Clouds the round has not
    /// touched are interchangeable within a group (same compute rate
    /// *and* same multi-hop transfer pricing), so `best_startable`
    /// forecasts one representative per group instead of every cloud. On
    /// a flat platform every path factor is exactly 1.0, so the grouping
    /// degenerates to the pure speed classes it always was.
    speed_classes: Vec<Vec<CloudId>>,
    /// Speed-class index of each cloud — the inverse of `speed_classes`,
    /// so per-cloud paths (delta refresh) can reach the class quotient
    /// cache without searching the groups.
    cloud_class: Vec<u32>,
    /// Clouds this round has touched — claimed, or carrying committed-job
    /// backlog — and which therefore need individual evaluation.
    touched: Vec<bool>,
    /// Set entries of `touched`, so `reset` clears them without an O(K)
    /// sweep.
    touched_list: Vec<CloudId>,
    /// Platform version every per-unit table was sized for; a mismatch in
    /// `reset` (units joined, left, or re-provisioned) rebuilds the round
    /// wholesale — mutations are rare, so the realloc cost is noise.
    version: u64,
    /// Resources marked busy this round, so `reset` clears only those.
    busy_list: Vec<ResourceId>,
    /// CPUs `gather` credited backlog to this round (duplicates allowed),
    /// so `reset` zeroes only those.
    backlog_cpus: Vec<ResourceId>,
    /// One entry per claim this round, in claim order (`claim_log.len()
    /// == claims`): the interference scope consulted by `exact_since`.
    claim_log: Vec<ClaimScope>,
    /// Number of claims applied this round. Doubles as a staleness tag:
    /// a [`StartOption`] computed at claim count `c` is exactly current
    /// as long as the count is still `c` (nothing mutated the round in
    /// between), so callers can reuse it without recomputing.
    claims: u32,
    /// Per-unit dirt since the round was (re)built: set when a claim
    /// moved the corresponding projection profile. Every busy mark lands
    /// on a resource `place_forecast` also moved, so a candidate whose
    /// resources are all clean still sees pristine (`== now`) profiles
    /// and a free first phase — its forecast collapses to the closed form
    /// [`Forecast::pristine`] with no profile loads or busy checks.
    dirty_edge_cpu: Vec<bool>,
    /// `EdgeOut(e)` moved (an uplink was claimed from edge `e`).
    dirty_edge_out: Vec<bool>,
    /// `EdgeIn(e)` moved (a downlink was claimed towards edge `e`).
    dirty_edge_in: Vec<bool>,
    /// Any of cloud `k`'s three resources moved (a claim landed on `k`).
    dirty_cloud: Vec<bool>,
    /// Cross-epoch quotient cache for fresh *edge* candidates:
    /// `fresh_edge_div[i]` holds `job.work / edge_speed(origin)` — a
    /// run-long constant per job, yet recomputed by every round's scan
    /// before this cache. NaN marks "not computed yet" (volumes and
    /// speeds are finite and positive, so a real quotient is never NaN).
    /// Entries survive `reset`; the platform-version rebuild — exactly
    /// when speeds can change — drops them.
    fresh_edge_div: Vec<Cell<f64>>,
    /// Same for fresh *cloud* candidates, one quotient per (job, speed
    /// class): `fresh_cloud_div[i * speed_classes.len() + class]` holds
    /// `job.work / class_speed`.
    fresh_cloud_div: Vec<Cell<f64>>,
}

impl RoundState {
    /// Fresh round: nothing claimed yet; backlog gathered from every
    /// pending job with progress on a committed target.
    pub fn new(view: &SimView<'_>) -> Self {
        let spec = view.spec();
        let mut speed_classes: Vec<((u64, u64, u64), Vec<CloudId>)> = Vec::new();
        for k in spec.clouds() {
            let key = (
                spec.cloud_speed(k).to_bits(),
                spec.path_up(k).to_bits(),
                spec.path_dn(k).to_bits(),
            );
            match speed_classes.iter_mut().find(|(cs, _)| *cs == key) {
                Some((_, class)) => class.push(k),
                None => speed_classes.push((key, vec![k])),
            }
        }
        let speed_classes: Vec<Vec<CloudId>> = speed_classes.into_iter().map(|(_, c)| c).collect();
        let num_classes = speed_classes.len();
        let mut cloud_class = vec![0u32; spec.num_cloud()];
        for (ci, class) in speed_classes.iter().enumerate() {
            for &k in class {
                cloud_class[k.0] = ci as u32;
            }
        }
        let mut round = RoundState {
            proj: Projection::from_view(view),
            busy_now: ResourceMap::new(spec, false),
            backlog: ResourceMap::new(spec, 0.0f64),
            contribution: vec![None; view.jobs.len()],
            contributors: Vec::new(),
            speed_classes,
            cloud_class,
            touched: vec![false; spec.num_cloud()],
            touched_list: Vec::new(),
            version: view.platform_version(),
            busy_list: Vec::new(),
            backlog_cpus: Vec::new(),
            claim_log: Vec::new(),
            claims: 0,
            dirty_edge_cpu: vec![false; spec.num_edge()],
            dirty_edge_out: vec![false; spec.num_edge()],
            dirty_edge_in: vec![false; spec.num_edge()],
            dirty_cloud: vec![false; spec.num_cloud()],
            fresh_edge_div: vec![Cell::new(f64::NAN); view.jobs.len()],
            fresh_cloud_div: vec![Cell::new(f64::NAN); view.jobs.len() * num_classes],
        };
        round.gather(view);
        round
    }

    /// Rebuilds the round in place for a new decision instant —
    /// equivalent to `RoundState::new(view)` but reusing every
    /// allocation. The view must describe the same platform the round
    /// was built for (policies hold one round per run and rebuild it in
    /// `on_start`).
    pub fn reset(&mut self, view: &SimView<'_>) {
        if self.version != view.platform_version() {
            // The platform mutated since the round was built: speed
            // classes, touched tables, and resource maps are all stale.
            *self = RoundState::new(view);
            return;
        }
        self.proj.reset(view.now);
        for r in self.busy_list.drain(..) {
            self.busy_now[r] = false;
        }
        self.claims = 0;
        self.claim_log.clear();
        self.dirty_edge_cpu.fill(false);
        self.dirty_edge_out.fill(false);
        self.dirty_edge_in.fill(false);
        self.dirty_cloud.fill(false);
        // Non-zero backlog lives only on CPUs `gather` credited (claims
        // merely subtract from those, possibly leaving float residue), so
        // zeroing them here replaces the full map fill.
        for cpu in self.backlog_cpus.drain(..) {
            self.backlog[cpu] = 0.0;
        }
        for i in self.contributors.drain(..) {
            self.contribution[i] = None;
        }
        for k in self.touched_list.drain(..) {
            self.touched[k.0] = false;
        }
        if self.contribution.len() != view.jobs.len() {
            self.contribution.clear();
            self.contribution.resize(view.jobs.len(), None);
        }
        if self.fresh_edge_div.len() != view.jobs.len() {
            // Jobs arrived since the last round (streaming sessions):
            // keep the computed quotients, mark only the new tail unset.
            self.fresh_edge_div
                .resize(view.jobs.len(), Cell::new(f64::NAN));
            self.fresh_cloud_div.resize(
                view.jobs.len() * self.speed_classes.len(),
                Cell::new(f64::NAN),
            );
        }
        self.gather(view);
    }

    fn gather(&mut self, view: &SimView<'_>) {
        let spec = view.spec();
        let jobs = view.jobs;
        for id in view.pending_jobs() {
            let i = id.0;
            let has_progress = jobs.up_done[i] + jobs.work_done[i] + jobs.dn_done[i] > 0.0;
            let Some(target) = jobs.committed[i] else {
                continue;
            };
            if !has_progress {
                continue;
            }
            let job = view.job(id);
            let (cpu, amount) = match target {
                Target::Edge => (
                    mmsec_platform::resource::ResourceId::EdgeCpu(job.origin),
                    jobs.remaining_work(i, job) / spec.edge_speed(job.origin),
                ),
                Target::Cloud(k) => (
                    mmsec_platform::resource::ResourceId::CloudCpu(k),
                    jobs.remaining_work(i, job) / spec.cloud_speed(k),
                ),
            };
            self.backlog[cpu] += amount;
            self.backlog_cpus.push(cpu);
            self.contribution[id.0] = Some((cpu, amount));
            self.contributors.push(id.0);
            if let Target::Cloud(k) = target {
                self.touch(k);
            }
        }
    }

    /// Marks cloud `k` as no longer interchangeable with its speed class
    /// this round.
    fn touch(&mut self, k: CloudId) {
        if !self.touched[k.0] {
            self.touched[k.0] = true;
            self.touched_list.push(k);
        }
    }

    /// Cached `work / speed` for job `i`'s fresh edge candidate,
    /// computed on first use (IEEE division is deterministic, so the
    /// cached quotient is bit-identical to recomputing it).
    fn fresh_edge_quot(&self, i: usize, work: f64, speed: f64) -> f64 {
        let cell = &self.fresh_edge_div[i];
        let q = cell.get();
        if q.is_nan() {
            let q = work / speed;
            cell.set(q);
            q
        } else {
            q
        }
    }

    /// Cached `work / class_speed` for job `i`'s fresh candidate on
    /// speed class `class`.
    fn fresh_cloud_quot(&self, i: usize, class: usize, work: f64, speed: f64) -> f64 {
        let cell = &self.fresh_cloud_div[i * self.speed_classes.len() + class];
        let q = cell.get();
        if q.is_nan() {
            let q = work / speed;
            cell.set(q);
            q
        } else {
            q
        }
    }

    /// Backlog a candidate target's CPU carries, excluding `id`'s own
    /// contribution.
    fn foreign_backlog(&self, view: &SimView<'_>, id: JobId, target: Target) -> f64 {
        let job = view.job(id);
        let cpu = match target {
            Target::Edge => mmsec_platform::resource::ResourceId::EdgeCpu(job.origin),
            Target::Cloud(k) => mmsec_platform::resource::ResourceId::CloudCpu(k),
        };
        let mut b = self.backlog[cpu];
        if let Some((own_cpu, amount)) = self.contribution[id.0] {
            if own_cpu == cpu {
                b -= amount;
            }
        }
        b.max(0.0)
    }

    /// Best (earliest-completion) target on which `id` can start
    /// immediately. Ties prefer the committed target (keeping progress),
    /// then the edge, then lower cloud indices — all deterministic.
    ///
    /// **Re-execution guard**: a job that has made progress on its
    /// committed target only accepts a *different* target when the
    /// from-scratch estimate there beats the *optimistic* continuation
    /// estimate (as if the committed resources freed right now). Waiting
    /// costs at least that optimistic estimate, so a restart failing the
    /// test can never pay off; without the guard, a job displaced for a
    /// single event restarts elsewhere, gets displaced again, and thrashes
    /// away all its progress.
    pub fn best_startable(&self, view: &SimView<'_>, id: JobId) -> Option<StartOption> {
        let jobs = view.jobs;
        let i = id.0;
        let job = view.job(id);
        let spec = view.spec();
        let now = view.now;
        let e = job.origin.0;
        let committed = jobs.committed[i];

        let has_progress = jobs.up_done[i] + jobs.work_done[i] + jobs.dn_done[i] > 0.0;
        let continuation_bar: Option<Time> = match committed {
            Some(t) if has_progress => {
                Some(now + Time::new(jobs.remaining_time_on(i, job, t, spec)))
            }
            _ => None,
        };

        // Snapshot for dirty candidates (full projection walk); built at
        // most once, and not at all on the common all-clean call.
        let mut st_slot: Option<JobState> = None;

        let mut best: Option<StartOption> = None;
        let mut best_penalized = Time::new(f64::MAX);

        // Committed target first (wins ties through strict `<` below),
        // with remaining volumes.
        if let Some(t) = committed {
            let cand = match t {
                Target::Edge if !self.dirty_edge_cpu[e] => {
                    if view.target_available(job.origin, t) {
                        jobs.current_phase(i, job, t).map(|phase| {
                            let f = Forecast::pristine(
                                t,
                                0.0,
                                jobs.remaining_work(i, job),
                                0.0,
                                spec.edge_speed(job.origin),
                                now,
                            );
                            let p = f.completion + Time::new(self.foreign_backlog(view, id, t));
                            (
                                p,
                                StartOption {
                                    target: t,
                                    completion: f.completion,
                                    phase,
                                    forecast: f,
                                },
                            )
                        })
                    } else {
                        None
                    }
                }
                // Clean iff no profile the forecast would read moved this
                // round: the cloud's own resources, plus the origin ports
                // when the matching communication phase exists (the
                // forecast reads `EdgeOut`/`EdgeIn` only when the volume
                // is > 0 — mirror that predicate exactly).
                Target::Cloud(k)
                    if !self.dirty_cloud[k.0]
                        && (!self.dirty_edge_out[e] || jobs.remaining_up(i, job) <= 0.0)
                        && (!self.dirty_edge_in[e] || jobs.remaining_dn(i, job) <= 0.0) =>
                {
                    if view.target_available(job.origin, t) {
                        jobs.current_phase(i, job, t).map(|phase| {
                            let f = Forecast::pristine(
                                t,
                                jobs.remaining_up(i, job) * spec.path_up(k),
                                jobs.remaining_work(i, job),
                                jobs.remaining_dn(i, job) * spec.path_dn(k),
                                spec.cloud_speed(k),
                                now,
                            );
                            let p = f.completion + Time::new(self.foreign_backlog(view, id, t));
                            (
                                p,
                                StartOption {
                                    target: t,
                                    completion: f.completion,
                                    phase,
                                    forecast: f,
                                },
                            )
                        })
                    } else {
                        None
                    }
                }
                _ => {
                    let st = st_slot.get_or_insert_with(|| view.state(id));
                    self.evaluate(view, id, st, job, t, continuation_bar)
                }
            };
            if let Some((p, opt)) = cand {
                if p < best_penalized {
                    best_penalized = p;
                    best = Some(opt);
                }
            }
        }

        // The edge, from-scratch volumes. When committed there the
        // candidate above already scored it; a re-evaluation ties and
        // loses on strict `<`, so it is skipped.
        if committed != Some(Target::Edge) {
            let cand = if !self.dirty_edge_cpu[e] {
                if view.target_available(job.origin, Target::Edge) && approx::positive(job.work) {
                    let exec = self.fresh_edge_quot(i, job.work, spec.edge_speed(job.origin));
                    let f = Forecast::pristine_quot(Target::Edge, 0.0, exec, 0.0, now);
                    let p = f.completion + Time::new(self.foreign_backlog(view, id, Target::Edge));
                    if matches!(continuation_bar, Some(bar) if p >= bar) {
                        None
                    } else {
                        Some((
                            p,
                            StartOption {
                                target: Target::Edge,
                                completion: f.completion,
                                phase: Phase::Compute,
                                forecast: f,
                            },
                        ))
                    }
                } else {
                    None
                }
            } else {
                let st = st_slot.get_or_insert_with(|| view.state(id));
                self.evaluate(view, id, st, job, Target::Edge, continuation_bar)
            };
            if let Some((p, opt)) = cand {
                if p < best_penalized {
                    best_penalized = p;
                    best = Some(opt);
                }
            }
        }

        // Cloud scan. An ascending index scan with strict `<` selects the
        // lowest-indexed cloud achieving the minimum penalized score —
        // the lexicographic minimum of (penalized, k) — so clouds may be
        // visited grouped by speed instead of by index. Within a group,
        // untouched clouds are indistinguishable (identical profiles,
        // zero backlog, shared origin inputs), so each group's scan stops
        // at its first untouched cloud: later untouched members tie and
        // lose on index, touched members can only score worse. Clean
        // members (touched or not) share one closed-form forecast per
        // group and differ only in the backlog penalty; members whose
        // profiles moved this round take the full projection walk.
        let fresh_cloud_phase = if approx::positive(job.up) {
            Some(Phase::Uplink)
        } else if approx::positive(job.work) {
            Some(Phase::Compute)
        } else if approx::positive(job.dn) {
            Some(Phase::Downlink)
        } else {
            None
        };
        let ports_clean_up = !self.dirty_edge_out[e] || job.up <= 0.0;
        let ports_clean_dn = !self.dirty_edge_in[e] || job.dn <= 0.0;
        let mut cloud_best: Option<(Time, CloudId, StartOption)> = None;
        if let Some(cphase) = fresh_cloud_phase {
            for (ci, class) in self.speed_classes.iter().enumerate() {
                let mut class_fc: Option<Forecast> = None;
                for &k in class {
                    if committed == Some(Target::Cloud(k)) {
                        // Already evaluated above; the score is identical
                        // and strict `<` would discard the re-evaluation.
                        continue;
                    }
                    let touched = self.touched[k.0];
                    if !view.target_available(job.origin, Target::Cloud(k)) {
                        continue; // a down cloud does not end the group scan
                    }
                    let clean = !self.dirty_cloud[k.0] && ports_clean_up && ports_clean_dn;
                    let cand = if clean {
                        let f = *class_fc.get_or_insert_with(|| {
                            let exec = self.fresh_cloud_quot(i, ci, job.work, spec.cloud_speed(k));
                            Forecast::pristine_quot(
                                Target::Cloud(k),
                                job.up * spec.path_up(k),
                                exec,
                                job.dn * spec.path_dn(k),
                                now,
                            )
                        });
                        // `id`'s own contribution sits on its committed
                        // CPU, which this scan skips — no subtraction.
                        let p = f.completion
                            + Time::new(self.backlog[ResourceId::CloudCpu(k)].max(0.0));
                        if matches!(continuation_bar, Some(bar) if p >= bar) {
                            None
                        } else {
                            Some((
                                p,
                                StartOption {
                                    target: Target::Cloud(k),
                                    completion: f.completion,
                                    phase: cphase,
                                    forecast: f,
                                },
                            ))
                        }
                    } else {
                        let st = st_slot.get_or_insert_with(|| view.state(id));
                        self.evaluate(view, id, st, job, Target::Cloud(k), continuation_bar)
                    };
                    if let Some((p, opt)) = cand {
                        let better = match &cloud_best {
                            None => true,
                            Some((bp, bk, _)) => p < *bp || (p == *bp && k.0 < bk.0),
                        };
                        if better {
                            cloud_best = Some((p, k, opt));
                        }
                    }
                    if !touched {
                        break;
                    }
                }
            }
        }
        if let Some((p, _, opt)) = cloud_best {
            if p < best_penalized {
                best = Some(opt);
            }
        }
        best
    }

    /// Number of [`Self::claim`]/[`Self::claim_option`] calls since the
    /// round was (re)built. A [`StartOption`] computed when the count was
    /// `c` is exact for as long as the count remains `c`.
    pub fn claim_count(&self) -> u32 {
        self.claims
    }

    /// True iff a [`StartOption`] computed for a job originating at
    /// `origin` when the claim count was `tag` is still *exactly* what
    /// [`Self::best_startable`] would return now.
    ///
    /// Trivially true when nothing was claimed since. Otherwise it holds
    /// when every intervening claim was edge-confined (`ClaimScope`) on a
    /// *different* edge: such a claim's entire write set — busy mark,
    /// profile move, dirt bit, and backlog retirement, all on
    /// `EdgeCpu(other)` — is disjoint from everything a best-startable
    /// call for an `origin` job reads (its own edge's CPU and ports, its
    /// committed target, and the touched-cloud scan, whose membership an
    /// edge claim never changes). Cloud claims never qualify: they touch
    /// their cloud, and the scan of *every* job visits touched clouds.
    pub fn exact_since(&self, tag: u32, origin: EdgeId) -> bool {
        self.claim_log[tag as usize..]
            .iter()
            .all(|c| c.origin != origin.0 && c.cloud.is_none() && c.retired_cloud.is_none())
    }

    /// Refreshes a [`StartOption`] cached at claim count `tag`: returns
    /// exactly what [`Self::best_startable`] would return for `id` *now*,
    /// but — whenever the intervening claims' interference can be
    /// localized — by re-scoring only the clouds whose score for `id` can
    /// have *improved* instead of rescanning the whole platform. `cached`
    /// must be the option `best_startable` returned for `id` against this
    /// round when the claim count was `tag`.
    ///
    /// Soundness of the delta path: a claim by a job from a *different*
    /// edge writes, outside its own origin's CPU and ports (which nothing
    /// in `id`'s evaluation reads), exactly the `ClaimScope` cloud set —
    /// its target cloud's profiles and the backlog of the cloud CPU it
    /// retired from. Reserving resources only advances their free times,
    /// and a forecast is monotone in each of them, so the target write
    /// can make that cloud only *worse* for `id`; a candidate that lost
    /// to `cached` at `tag` still loses, and only the *retired* clouds —
    /// whose backlog penalty dropped — can overtake it. `cached` itself
    /// keeps its score and startability (its penalty can only have
    /// *decreased*, so it still beats every unchanged candidate it beat
    /// at `tag`). The fresh argmin is therefore `cached` versus the
    /// re-scored retired clouds, compared under the scan's total order:
    /// penalized score first, ties broken committed target → edge →
    /// ascending cloud index. Each re-score is first bound-tested with
    /// the closed-form pristine forecast (every resource free at `now` —
    /// a lower bound on any projection walk over the same from-scratch
    /// volumes) plus the current backlog; candidates whose bound already
    /// loses skip the walk, and for clean clouds the bound *is* the
    /// exact score. Falls back to the full scan when a claim shares
    /// `id`'s origin, moved the cached target's own profiles, or the
    /// delta outgrows its fixed buffer.
    pub fn refresh_option(
        &self,
        view: &SimView<'_>,
        id: JobId,
        tag: u32,
        cached: &StartOption,
    ) -> Option<StartOption> {
        /// Dedup-push; false on overflow (caller falls back to the scan).
        fn push(delta: &mut [CloudId; 16], len: &mut usize, k: CloudId) -> bool {
            if delta[..*len].contains(&k) {
                return true;
            }
            if *len == delta.len() {
                return false;
            }
            delta[*len] = k;
            *len += 1;
            true
        }

        let job = view.job(id);
        let e = job.origin.0;
        let cached_cloud = match cached.target {
            Target::Cloud(q) => Some(q),
            Target::Edge => None,
        };
        let mut delta = [CloudId(0); 16];
        let mut delta_len = 0usize;
        for c in &self.claim_log[tag as usize..] {
            if c.origin == e {
                return self.best_startable(view, id);
            }
            if c.cloud == cached_cloud && c.cloud.is_some() {
                // The cached forecast itself is stale.
                return self.best_startable(view, id);
            }
            // The claim's *target* needs no re-scoring beyond the check
            // above: reserving resources only advances their profiles,
            // and a forecast is monotone in every free time it reads, so
            // a foreign claim can make its target cloud only *worse* for
            // `id` — a candidate that lost to `cached` at `tag` still
            // loses. Improvement flows solely through the backlog the
            // claim retired.
            if let Some(m) = c.retired_cloud {
                // A retirement on the cached cloud only lowers its own
                // penalty — covered by keeping `cached` as incumbent.
                if Some(m) != cached_cloud && !push(&mut delta, &mut delta_len, m) {
                    return self.best_startable(view, id);
                }
            }
        }
        if delta_len == 0 {
            // Nothing `id` reads improved — the cached target's own
            // backlog can only have dropped, and every other candidate
            // only worsened; the cached option is still the argmin, bit
            // for bit.
            return Some(*cached);
        }

        // Total order of the full scan as an explicit key: penalized
        // score, then a rank placing the committed target before the
        // edge before ascending cloud indices. Distinct targets get
        // distinct ranks, so the order is total and the argmin unique.
        let jobs = view.jobs;
        let i = id.0;
        let committed = jobs.committed[i];
        let rank = |t: Target| -> u64 {
            if committed == Some(t) {
                return 0;
            }
            match t {
                Target::Edge => 1,
                Target::Cloud(k) => 2 + k.0 as u64,
            }
        };
        let has_progress = jobs.up_done[i] + jobs.work_done[i] + jobs.dn_done[i] > 0.0;
        let continuation_bar: Option<Time> = match committed {
            Some(t) if has_progress => {
                Some(view.now + Time::new(jobs.remaining_time_on(i, job, t, view.spec())))
            }
            _ => None,
        };
        let spec = view.spec();
        let now = view.now;
        let mut st_slot: Option<JobState> = None;
        let mut best = *cached;
        let mut best_key = (
            cached.completion + Time::new(self.foreign_backlog(view, id, cached.target)),
            rank(cached.target),
        );
        let fresh_cloud_phase = if approx::positive(job.up) {
            Some(Phase::Uplink)
        } else if approx::positive(job.work) {
            Some(Phase::Compute)
        } else if approx::positive(job.dn) {
            Some(Phase::Downlink)
        } else {
            None
        };
        for &k in &delta[..delta_len] {
            let t = Target::Cloud(k);
            if committed == Some(t) {
                // Continuation: scored on *remaining* volumes, so the
                // from-scratch pristine bound below does not apply.
                let st = st_slot.get_or_insert_with(|| view.state(id));
                if let Some((p, opt)) = self.evaluate(view, id, st, job, t, continuation_bar) {
                    let key = (p, rank(t));
                    if key < best_key {
                        best_key = key;
                        best = opt;
                    }
                }
                continue;
            }
            let Some(cphase) = fresh_cloud_phase else {
                continue;
            };
            // Pristine bound: the closed-form forecast assumes every
            // resource free at `now`, a lower bound on any projection
            // walk for the same from-scratch volumes; adding the current
            // backlog keeps it a lower bound on the penalized score. A
            // candidate whose bound already loses to the incumbent under
            // the scan's total order cannot become the argmin — skip it
            // without touching the projection.
            let ci = self.cloud_class[k.0] as usize;
            let exec = self.fresh_cloud_quot(i, ci, job.work, spec.cloud_speed(k));
            let f = Forecast::pristine_quot(
                t,
                job.up * spec.path_up(k),
                exec,
                job.dn * spec.path_dn(k),
                now,
            );
            let p_lb = f.completion + Time::new(self.backlog[ResourceId::CloudCpu(k)].max(0.0));
            if (p_lb, rank(t)) >= best_key {
                continue;
            }
            let clean = !self.dirty_cloud[k.0]
                && (!self.dirty_edge_out[e] || job.up <= 0.0)
                && (!self.dirty_edge_in[e] || job.dn <= 0.0);
            if clean {
                // The bound *is* the clean-path score, and it already
                // beat the incumbent strictly.
                if view.target_available(job.origin, t)
                    && !matches!(continuation_bar, Some(bar) if p_lb >= bar)
                {
                    best_key = (p_lb, rank(t));
                    best = StartOption {
                        target: t,
                        completion: f.completion,
                        phase: cphase,
                        forecast: f,
                    };
                }
            } else {
                let st = st_slot.get_or_insert_with(|| view.state(id));
                if let Some((p, opt)) = self.evaluate(view, id, st, job, t, continuation_bar) {
                    let key = (p, rank(t));
                    if key < best_key {
                        best_key = key;
                        best = opt;
                    }
                }
            }
        }
        Some(best)
    }

    /// Evaluates one placement candidate: `Some((penalized_score, opt))`
    /// if `id` could start on `target` right now, `None` otherwise. This
    /// is exactly the per-target body of the reference ascending scan
    /// ([`Self::best_startable_exhaustive`]); `best_startable` calls it
    /// only on candidates that can still win.
    fn evaluate(
        &self,
        view: &SimView<'_>,
        id: JobId,
        st: &JobState,
        job: &Job,
        target: Target,
        continuation_bar: Option<Time>,
    ) -> Option<(Time, StartOption)> {
        if !view.target_available(job.origin, target) {
            return None; // unit is down (fault injection): never place on it
        }
        let phase = first_phase(view, id, target)?;
        if phase
            .resources(job, target)
            .iter()
            .any(|r| self.busy_now[r])
        {
            return None;
        }
        let spec = view.spec();
        let f = self.proj.forecast(job, st, target, spec, view.now);
        let penalized = f.completion + Time::new(self.foreign_backlog(view, id, target));
        if st.committed != Some(target) {
            if let Some(bar) = continuation_bar {
                if penalized >= bar {
                    return None; // restarting cannot beat waiting
                }
            }
        }
        Some((
            penalized,
            StartOption {
                target,
                completion: f.completion,
                phase,
                forecast: f,
            },
        ))
    }

    /// Reference implementation of [`Self::best_startable`]: the plain
    /// ascending scan over every target, with no speed-class sharing.
    /// The fast path must match it bit-for-bit (pinned by the
    /// `fast_path_matches_exhaustive_scan` proptest below).
    #[cfg(test)]
    fn best_startable_exhaustive(&self, view: &SimView<'_>, id: JobId) -> Option<StartOption> {
        let st = &view.state(id);
        let job = view.job(id);
        let spec = view.spec();

        let has_progress = st.up_done + st.work_done + st.dn_done > 0.0;
        let continuation_bar: Option<Time> = match st.committed {
            Some(t) if has_progress => {
                Some(view.now + Time::new(st.remaining_time_on(job, t, spec)))
            }
            _ => None,
        };

        let mut best: Option<StartOption> = None;
        let mut best_penalized = Time::new(f64::MAX);
        let mut consider = |target: Target| {
            if let Some((p, opt)) = self.evaluate(view, id, st, job, target, continuation_bar) {
                if p < best_penalized {
                    best_penalized = p;
                    best = Some(opt);
                }
            }
        };
        if let Some(t) = st.committed {
            consider(t);
        }
        consider(Target::Edge);
        for k in spec.clouds() {
            consider(Target::Cloud(k));
        }
        best
    }

    /// Claims `target` for `id`: blocks the first phase's resources for
    /// this instant, books the job's whole remaining pipeline into the
    /// projection, and retires its backlog contribution (its future is
    /// now explicit in the projection).
    pub fn claim(&mut self, view: &SimView<'_>, id: JobId, target: Target) {
        let st = view.state(id);
        let job = view.job(id);
        let phase = first_phase(view, id, target).expect("claimed job has a phase to run");
        let f = self.proj.forecast(job, &st, target, view.spec(), view.now);
        self.apply_claim(view, id, phase, &f, target);
    }

    /// [`Self::claim`] from an already-computed [`StartOption`]. Valid
    /// only when `opt` is *current* — computed by [`Self::best_startable`]
    /// against this round with no claims applied since (compare
    /// [`Self::claim_count`]); the cached phase and forecast are then
    /// exactly what `claim` would recompute.
    pub fn claim_option(&mut self, view: &SimView<'_>, id: JobId, opt: &StartOption) {
        self.apply_claim(view, id, opt.phase, &opt.forecast, opt.target);
    }

    fn apply_claim(
        &mut self,
        view: &SimView<'_>,
        id: JobId,
        phase: Phase,
        f: &Forecast,
        target: Target,
    ) {
        let job = view.job(id);
        for r in phase.resources(job, target).iter() {
            debug_assert!(!self.busy_now[r], "double-claim of {r}");
            self.busy_now[r] = true;
            self.busy_list.push(r);
        }
        self.proj.place_forecast(job, f, target);
        // Mirror `place_forecast`'s writes exactly: every moved profile
        // (and hence every busy-marked resource — the first phase's
        // resources are a subset of what the forecast places) turns its
        // unit dirty.
        match target {
            Target::Edge => self.dirty_edge_cpu[job.origin.0] = true,
            Target::Cloud(k) => {
                self.dirty_cloud[k.0] = true;
                if f.has_up {
                    self.dirty_edge_out[job.origin.0] = true;
                }
                if f.has_dn {
                    self.dirty_edge_in[job.origin.0] = true;
                }
            }
        }
        let retired = self.contribution[id.0].take();
        if let Some((cpu, amount)) = retired {
            self.backlog[cpu] = (self.backlog[cpu] - amount).max(0.0);
        }
        if let Target::Cloud(k) = target {
            self.touch(k);
        }
        self.claim_log.push(ClaimScope {
            origin: job.origin.0,
            cloud: match target {
                Target::Edge => None,
                Target::Cloud(k) => Some(k),
            },
            retired_cloud: retired.and_then(|(cpu, _)| match cpu {
                ResourceId::CloudCpu(k) => Some(k),
                _ => None, // `gather` only credits CPUs
            }),
        });
        self.claims += 1;
        debug_assert_eq!(self.claims as usize, self.claim_log.len());
    }
}

/// Stretch of `id` if it completes at `completion`.
pub fn stretch_at(view: &SimView<'_>, id: JobId, completion: Time) -> f64 {
    view.stretch_if_completed_at(id, completion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{
        CloudId, EdgeId, Instance, Job, JobArena, JobState, PendingSet, PlatformSpec,
    };

    fn fixture() -> (Instance, Vec<JobState>) {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0), // edge 4, cloud 4
            Job::new(EdgeId(0), 0.0, 6.0, 1.0, 1.0), // edge 12, cloud 8
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); 2];
        for s in &mut states {
            s.released = true;
        }
        (inst, states)
    }

    #[test]
    fn first_phase_fresh_and_committed() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.0; // uplink complete on cloud 0
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(1.0), &arena, &pending);
        assert_eq!(
            first_phase(&view, JobId(0), Target::Cloud(CloudId(0))),
            Some(Phase::Compute)
        );
        // Fresh start on cloud 1: uplink again.
        assert_eq!(
            first_phase(&view, JobId(0), Target::Cloud(CloudId(1))),
            Some(Phase::Uplink)
        );
        assert_eq!(
            first_phase(&view, JobId(0), Target::Edge),
            Some(Phase::Compute)
        );
    }

    #[test]
    fn best_startable_picks_earliest_completion() {
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let round = RoundState::new(&view);
        // Job 1 (6 work): edge 12, cloud 8 → cloud.
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Cloud(CloudId(0)));
        assert_eq!(opt.completion, Time::new(8.0));
        // Job 0: tie (4 vs 4); edge is evaluated before clouds, wins ties.
        let opt = round.best_startable(&view, JobId(0)).unwrap();
        assert_eq!(opt.target, Target::Edge);
    }

    #[test]
    fn claims_spread_over_homogeneous_clouds() {
        // THE regression this module guards against: with one cloud CPU
        // claimed, the next job must see cloud 0 as slower and pick
        // cloud 1 even though cloud 0's *ports* are free.
        let spec = PlatformSpec::builder()
            .edges(vec![0.1])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0), // no comm: CPU only
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); 2];
        for s in &mut states {
            s.released = true;
        }
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let mut round = RoundState::new(&view);
        let first = round.best_startable(&view, JobId(0)).unwrap();
        assert_eq!(first.target, Target::Cloud(CloudId(0)));
        round.claim(&view, JobId(0), first.target);
        let second = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(
            second.target,
            Target::Cloud(CloudId(1)),
            "must not pile onto the claimed cloud"
        );
        assert_eq!(second.completion, Time::new(10.0));
    }

    #[test]
    fn busy_first_phase_resources_exclude_targets() {
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let mut round = RoundState::new(&view);
        // Claim job 0's uplink on cloud 0: EdgeOut(0) + CloudIn(0) are
        // busy now, so job 1 (which also needs EdgeOut(0) to reach any
        // cloud) can only start on the edge.
        round.claim(&view, JobId(0), Target::Cloud(CloudId(0)));
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Edge);
        // ... and if the edge CPU is claimed too, nothing can start.
        round.claim(&view, JobId(1), Target::Edge);
        let mut st2 = states.clone();
        st2.push(JobState {
            released: true,
            ..JobState::default()
        });
        let mut jobs2 = inst.jobs.clone();
        jobs2.push(Job::new(EdgeId(0), 0.0, 1.0, 1.0, 1.0));
        let inst2 = Instance::new(inst.spec.clone(), jobs2).unwrap();
        let arena2 = JobArena::from_states(&inst2, &st2);
        let pending2 = PendingSet::from_states(&inst2, &st2);
        let view2 = SimView::new(&inst2, Time::ZERO, &arena2, &pending2);
        assert_eq!(round.best_startable(&view2, JobId(2)), None);
    }

    #[test]
    fn reset_reproduces_a_fresh_round() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.0;
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(1.0), &arena, &pending);
        let mut round = RoundState::new(&view);
        round.claim(&view, JobId(0), Target::Cloud(CloudId(0)));
        // Later instant, more progress: the reused round must behave
        // exactly like a freshly built one.
        states[0].work_done = 1.0;
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(2.0), &arena, &pending);
        round.reset(&view);
        let fresh = RoundState::new(&view);
        for id in [JobId(0), JobId(1)] {
            assert_eq!(
                round.best_startable(&view, id),
                fresh.best_startable(&view, id)
            );
        }
    }

    #[test]
    fn committed_target_preferred_on_tie() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(1)));
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(0)).unwrap();
        assert_eq!(opt.target, Target::Cloud(CloudId(1)));
    }

    #[test]
    fn committed_progress_counted_in_estimates() {
        let (inst, mut states) = fixture();
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.0;
        states[0].work_done = 1.0;
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(2.0), &arena, &pending);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(0)).unwrap();
        // Continue on cloud 0: 1 work + 1 dn = 2 → completes at 4;
        // fresh anywhere would take ≥ 4.
        assert_eq!(opt.target, Target::Cloud(CloudId(0)));
        assert_eq!(opt.completion, Time::new(4.0));
    }

    #[test]
    fn down_units_are_never_placement_targets() {
        use mmsec_platform::Availability;
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let mut avail = Availability::all_up(1, 2);
        // Job 1 prefers cloud 0 (see `best_startable_picks_earliest_
        // completion`); with cloud 0 down it must fall over to cloud 1,
        // and with the whole cloud down it must run locally.
        avail.cloud_up[0] = false;
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending).with_availability(&avail);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Cloud(CloudId(1)));

        avail.cloud_up[1] = false;
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending).with_availability(&avail);
        let round = RoundState::new(&view);
        let opt = round.best_startable(&view, JobId(1)).unwrap();
        assert_eq!(opt.target, Target::Edge);

        // Everything down: nothing startable at all.
        avail.edge_up[0] = false;
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending).with_availability(&avail);
        let round = RoundState::new(&view);
        assert_eq!(round.best_startable(&view, JobId(1)), None);
    }

    mod fast_path {
        use super::super::*;
        use mmsec_platform::{
            Availability, CloudId, EdgeId, Instance, Job, JobArena, JobState, PendingSet,
            PlatformSpec,
        };
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The speed-class fast path must reproduce the exhaustive
            /// ascending scan bit-for-bit: heterogeneous cloud speeds
            /// (so groups and cross-group ties exist), jobs in every
            /// commitment/progress state, random down units, and claims
            /// applied mid-round.
            #[test]
            fn fast_path_matches_exhaustive_scan(
                speed_picks in proptest::collection::vec(0usize..3, 1..8),
                job_descs in proptest::collection::vec(
                    (0.0f64..4.0, 0.5f64..8.0, 0.0f64..3.0, 0.0f64..3.0, 0u8..2, 0u8..4),
                    1..12,
                ),
                down in proptest::collection::vec(any::<bool>(), 10),
                claims in 0usize..4,
                now in 4.0f64..6.0,
            ) {
                let speeds: Vec<f64> =
                    speed_picks.iter().map(|&p| [0.5, 1.0, 2.0][p]).collect();
                let num_cloud = speeds.len();
                let spec = PlatformSpec::builder().edges(vec![1.0, 0.5]).clouds(speeds).build();
                let jobs: Vec<Job> = job_descs
                    .iter()
                    .map(|&(rel, work, up, dn, origin, _)| {
                        Job::new(EdgeId(origin as usize), rel, work, up, dn)
                    })
                    .collect();
                let inst = Instance::new(spec, jobs).unwrap();
                let mut states = vec![JobState::default(); inst.num_jobs()];
                for (i, (st, &(_, work, up, _, _, kind))) in
                    states.iter_mut().zip(job_descs.iter()).enumerate()
                {
                    st.released = true;
                    match kind {
                        1 => {
                            st.committed = Some(Target::Edge);
                            st.work_done = 0.5 * work;
                        }
                        2 => {
                            st.committed = Some(Target::Cloud(CloudId(i % num_cloud)));
                            st.up_done = 0.5 * up;
                        }
                        3 => {
                            st.committed = Some(Target::Cloud(CloudId(i % num_cloud)));
                            st.up_done = up;
                            st.work_done = 0.25 * work;
                        }
                        _ => {}
                    }
                }
                let mut avail = Availability::all_up(2, num_cloud);
                for (up, d) in avail.cloud_up.iter_mut().zip(down.iter()) {
                    *up = !d;
                }
                avail.edge_up[0] = !down[8];
                avail.edge_up[1] = !down[9];
                let arena = JobArena::from_states(&inst, &states);
                let pending = PendingSet::from_states(&inst, &states);
                let view = SimView::new(&inst, Time::new(now), &arena, &pending)
                    .with_availability(&avail);
                let mut round = RoundState::new(&view);
                // Kept in lockstep with `round`, but claimed through the
                // cached-option path — `claim_option` must leave the
                // round in the exact state `claim`'s recompute does.
                let mut mirror = RoundState::new(&view);
                let check = |round: &RoundState| -> Result<(), TestCaseError> {
                    for id in view.pending_jobs() {
                        prop_assert_eq!(
                            round.best_startable(&view, id),
                            round.best_startable_exhaustive(&view, id),
                            "job {:?} diverges",
                            id
                        );
                    }
                    Ok(())
                };
                check(&round)?;
                // Claim a few jobs (whatever the scan picks) and re-check:
                // claims create touched clouds mid-round. Options cached
                // at every earlier claim count are carried along so the
                // delta repair is pinned against arbitrarily stale tags.
                let mut snapshots: Vec<(JobId, u32, StartOption)> = Vec::new();
                let mut claimed = 0;
                for id in view.pending_jobs() {
                    if claimed == claims {
                        break;
                    }
                    for jid in view.pending_jobs() {
                        if let Some(opt) = round.best_startable(&view, jid) {
                            snapshots.push((jid, round.claim_count(), opt));
                        }
                    }
                    if let Some(opt) = round.best_startable(&view, id) {
                        round.claim(&view, id, opt.target);
                        mirror.claim_option(&view, id, &opt);
                        claimed += 1;
                        check(&round)?;
                        for jid in view.pending_jobs() {
                            prop_assert_eq!(
                                round.best_startable(&view, jid),
                                mirror.best_startable(&view, jid),
                                "claim_option diverged from claim on job {:?}",
                                jid
                            );
                        }
                        // The delta repair must reproduce the full rescan
                        // from any option that was exact when snapshot.
                        for &(jid, tag, ref opt) in &snapshots {
                            prop_assert_eq!(
                                round.refresh_option(&view, jid, tag, opt),
                                round.best_startable(&view, jid),
                                "refresh_option diverges for job {:?} from tag {}",
                                jid,
                                tag
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stretch_estimate() {
        let (inst, states) = fixture();
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        assert!((stretch_at(&view, JobId(0), Time::new(6.0)) - 1.5).abs() < 1e-12);
    }
}
