//! The **Edge-Only** baseline (paper §V-A).
//!
//! No cloud: every job runs on its origin edge unit. Since edge units are
//! then independent single machines, each one runs the stretch-so-far
//! earliest-deadline-first algorithm of Bender et al. \[3\] (Δ-competitive
//! on one machine): at each release, binary-search the optimal achievable
//! stretch of the released jobs, derive deadlines
//! `d_i = r_i + S_c · min(t^e_i, t^c_i)` — note the edge-cloud correction:
//! the paper computes the stretch denominator against a potential cloud
//! execution even though the job never leaves the edge — and schedule
//! preemptive EDF until the next release.

use crate::bender::{deadline, optimal_stretch_so_far, ReleasedJob};
use mmsec_platform::{
    DecisionCadence, DirectiveBuffer, Instance, JobId, OnlineScheduler, SimView, Target,
};
use mmsec_sim::Time;

/// Edge-Only stretch-so-far EDF policy.
#[derive(Clone, Debug)]
pub struct EdgeOnly {
    /// Multiplier α applied to the optimal stretch-so-far (paper: 1).
    alpha: f64,
    /// Relative precision of the stretch binary search.
    eps_rel: f64,
    /// Cached deadline per job (None until first computed).
    deadlines: Vec<Option<Time>>,
    /// Pending jobs sorted by (deadline, id); kept alive across decide
    /// calls and maintained from the view's pending delta.
    order: Vec<(Time, JobId)>,
    /// Maintain `order` incrementally (default); `false` rebuilds it at
    /// every decide and demotes the policy to
    /// `DecisionCadence::EveryEvent` (equivalence-test reference mode).
    incremental: bool,
    /// Platform version the cached deadlines assume; a mismatch (an edge
    /// re-provisioned, units joined or left) voids them all — deadlines
    /// depend on edge speeds through the processing-time estimates.
    platform_version: u64,
}

impl Default for EdgeOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeOnly {
    /// Policy with the paper's parameters (α = 1, ε = 10⁻³).
    pub fn new() -> Self {
        Self::with_params(1.0, 1e-3)
    }

    /// Policy with explicit α and binary-search precision.
    pub fn with_params(alpha: f64, eps_rel: f64) -> Self {
        assert!(alpha > 0.0 && eps_rel > 0.0);
        EdgeOnly {
            alpha,
            eps_rel,
            deadlines: Vec::new(),
            order: Vec::new(),
            incremental: true,
            platform_version: 0,
        }
    }

    /// Disables the incremental order maintenance *and* decision-epoch
    /// gating: every decide rebuilds the EDF order from scratch.
    /// Schedules are bit-identical to the default mode; used as the
    /// reference in equivalence tests.
    pub fn with_recompute(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Recomputes deadlines for all pending jobs of edge unit `unit`.
    fn recompute_unit(&mut self, view: &SimView<'_>, unit: usize) {
        let spec = view.spec();
        let released: Vec<ReleasedJob> = view
            .pending_jobs()
            .filter(|&id| view.job(id).origin.0 == unit)
            .map(|id| {
                let job = view.job(id);
                ReleasedJob {
                    id,
                    release: job.release,
                    proc_time: view.jobs.remaining_work(id.0, job) / spec.edge_speed(job.origin),
                    min_time: view.min_time(id),
                }
            })
            .collect();
        if released.is_empty() {
            return;
        }
        let s_opt = optimal_stretch_so_far(view.now, &released, self.eps_rel);
        let s_c = self.alpha * s_opt;
        for j in &released {
            self.deadlines[j.id.0] = Some(deadline(j, s_c));
        }
    }
}

impl OnlineScheduler for EdgeOnly {
    fn name(&self) -> String {
        if self.alpha == 1.0 {
            "edge-only".into()
        } else {
            format!("edge-only(a={})", self.alpha)
        }
    }

    fn cadence(&self) -> DecisionCadence {
        if self.incremental {
            DecisionCadence::OnEpochChange
        } else {
            DecisionCadence::EveryEvent
        }
    }

    fn on_start(&mut self, instance: &Instance) {
        self.deadlines = vec![None; instance.num_jobs()];
        self.order.clear();
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        // Streaming sessions admit jobs after `on_start`.
        if self.deadlines.len() < view.jobs.len() {
            self.deadlines.resize(view.jobs.len(), None);
        }
        // Platform mutation: cached deadlines assume stale speeds — void
        // them so every unit with pending work recomputes below.
        if self.platform_version != view.platform_version() {
            self.platform_version = view.platform_version();
            self.deadlines.fill(None);
            self.order.clear();
        }
        // Units with a newly released job recompute their deadlines
        // (stretch-so-far is re-estimated at release events).
        let mut dirty_units: Vec<usize> = view
            .pending_jobs()
            .filter(|id| self.deadlines[id.0].is_none())
            .map(|id| view.job(id).origin.0)
            .collect();
        dirty_units.sort_unstable();
        dirty_units.dedup();
        let recomputed = !dirty_units.is_empty();
        for unit in dirty_units {
            self.recompute_unit(view, unit);
        }

        // Preemptive EDF per unit: a global deadline sort is fine because
        // units share no resources.
        if recomputed || !self.incremental {
            // A recompute rewrote deadlines of whole units: rebuild.
            self.order.clear();
            self.order.extend(view.pending_jobs().map(|id| {
                let d = self.deadlines[id.0].expect("deadline computed above");
                (d, id)
            }));
            self.order.sort();
        } else {
            // Deadlines unchanged since the last call: the order only
            // shrinks by the jobs that completed in between (new
            // releases force the rebuild branch above). A `None` deadline
            // here means a platform bump voided the cache after the job
            // was planned — `order` was cleared with it, nothing to drop.
            for &id in view.delta_removed() {
                let Some(d) = self.deadlines[id.0] else {
                    continue;
                };
                let key = (d, id);
                if let Ok(pos) = self.order.binary_search(&key) {
                    self.order.remove(pos);
                }
            }
        }
        for &(_, id) in &self.order {
            // Fault injection: don't (re)commit jobs whose origin edge is
            // currently down — they wait, uncommitted, until it recovers.
            if view.edge_available(view.job(id).origin) {
                out.push(id, Target::Edge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{
        max_stretch, validate, EdgeId, Instance, Job, PlatformSpec, Simulation, StretchReport,
    };

    #[test]
    fn never_uses_cloud() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.1])
            .cloud_pool(4)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.1, 0.1),
            Job::new(EdgeId(0), 0.0, 2.0, 0.1, 0.1),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut EdgeOnly::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        for a in &out.schedule.alloc {
            assert_eq!(*a, Some(Target::Edge));
        }
    }

    #[test]
    fn intro_example_runs_short_job_first() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut EdgeOnly::new())
            .run()
            .unwrap();
        // Optimal order: short first → max stretch 1.1.
        let ms = max_stretch(&inst, &out.schedule);
        assert!((ms - 1.1).abs() < 1e-6, "max stretch {ms}");
    }

    #[test]
    fn stretch_denominator_counts_cloud_alternative() {
        // One job, slow edge, cheap cloud alternative (min_time 4 versus
        // 12 locally). Edge-Only still executes locally, so its stretch is
        // 12/4 = 3 even though the schedule is the best possible locally.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0 / 3.0])
            .cloud_pool(1)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut EdgeOnly::new())
            .run()
            .unwrap();
        let ms = max_stretch(&inst, &out.schedule);
        assert!((ms - 3.0).abs() < 1e-9, "max stretch {ms}");
    }

    #[test]
    fn units_are_independent() {
        // Jobs on different units do not delay each other.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0, 1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 5.0, 0.0, 0.0),
            Job::new(EdgeId(1), 0.0, 5.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut EdgeOnly::new())
            .run()
            .unwrap();
        let report = StretchReport::new(&inst, &out.schedule);
        assert!((report.max_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deadlines_reorder_on_new_release() {
        // A long job runs; a short job arrives: its deadline is tighter,
        // EDF preempts the long one.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
            Job::new(EdgeId(0), 1.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut EdgeOnly::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        let report = StretchReport::new(&inst, &out.schedule);
        // Short job's stretch stays small; overall max well below the
        // FIFO outcome (which would give the short job stretch 10).
        assert!(
            report.max_stretch < 2.2,
            "max stretch {}",
            report.max_stretch
        );
    }

    #[test]
    fn alpha_parameter_changes_name_and_behavior_is_sane() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.5, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut pol = EdgeOnly::with_params(2.0, 1e-3);
        assert_eq!(pol.name(), "edge-only(a=2)");
        let out = Simulation::of(&inst).policy(&mut pol).run().unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
    }
}
