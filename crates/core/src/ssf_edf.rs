//! The **SSF-EDF** heuristic (paper §V-D) — stretch-so-far
//! earliest-deadline-first, extended to the edge-cloud platform.
//!
//! At each *release* event:
//! 1. binary-search the smallest target stretch `S` such that the deadline
//!    set `d_i = r_i + S · min(t^e_i, t^c_i)` is *schedulable* by the EDF
//!    placement rule: walk jobs by non-decreasing deadline, assign each to
//!    the processor where the contention-profile projection completes it
//!    earliest, and check every forecast completion against its deadline;
//! 2. fix the plan (deadline order + chosen targets) computed at
//!    `S_c = α · S` (α = 1 in the paper) and follow it until the next
//!    release.
//!
//! EDF is *not* optimal on this platform (the paper gives a two-job
//! counterexample, reproduced in the tests below), so the binary search
//! may settle above the true optimum — SSF-EDF remains a heuristic.

use mmsec_platform::obs::Event as ObsEvent;
use mmsec_platform::projection::Projection;
use mmsec_platform::{
    DecisionCadence, DirectiveBuffer, Instance, JobId, ObserverHandle, OnlineScheduler, SimView,
    Target,
};
use mmsec_sim::Time;

/// SSF-EDF policy.
#[derive(Clone, Debug)]
pub struct SsfEdf {
    /// Deadline multiplier α (paper default 1).
    alpha: f64,
    /// Relative precision ε of the stretch binary search.
    eps_rel: f64,
    /// Plan: deadline per job (valid while it is pending).
    deadlines: Vec<Option<Time>>,
    /// Plan: chosen target per job.
    targets: Vec<Option<Target>>,
    /// Pending jobs sorted by (deadline, id); kept alive across decide
    /// calls and maintained from the view's pending delta.
    order: Vec<(Time, JobId)>,
    /// Maintain `order` incrementally (default). `false` rebuilds and
    /// re-sorts it at every decide and demotes the policy to
    /// `DecisionCadence::EveryEvent` — the reference mode the
    /// gating-equivalence proptest compares against.
    incremental: bool,
    /// Platform version the current plan was computed against; a mismatch
    /// (units joined, left, or were re-provisioned) voids every deadline
    /// and target, forcing a full replan.
    platform_version: u64,
    /// Sink for `BinarySearchProbe` events, when attached.
    observer: Option<ObserverHandle>,
}

impl Default for SsfEdf {
    fn default() -> Self {
        Self::new()
    }
}

impl SsfEdf {
    /// Policy with the paper's parameters (α = 1, ε = 10⁻³).
    pub fn new() -> Self {
        Self::with_params(1.0, 1e-3)
    }

    /// Policy with explicit α and binary-search precision (the α ablation
    /// of the experiment suite).
    pub fn with_params(alpha: f64, eps_rel: f64) -> Self {
        assert!(alpha > 0.0 && eps_rel > 0.0);
        SsfEdf {
            alpha,
            eps_rel,
            deadlines: Vec::new(),
            targets: Vec::new(),
            order: Vec::new(),
            incremental: true,
            platform_version: 0,
            observer: None,
        }
    }

    /// Disables the incremental order maintenance *and* decision-epoch
    /// gating (the policy reports `DecisionCadence::EveryEvent`): every
    /// decide rebuilds the EDF order from scratch. Schedules are
    /// bit-identical to the default mode; used as the reference in
    /// equivalence tests.
    pub fn with_recompute(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Runs one feasibility probe of the stretch binary search and reports
    /// it to the attached observer, if any.
    fn probe(&self, view: &SimView<'_>, s: f64) -> Attempt {
        let attempt = self.try_stretch(view, s);
        if let Some(obs) = &self.observer {
            obs.with(|o| {
                o.on_event(&ObsEvent::BinarySearchProbe {
                    t: view.now,
                    stretch: s,
                    feasible: attempt.feasible,
                })
            });
        }
        attempt
    }

    /// EDF placement under target stretch `s`: returns the plan and
    /// whether every deadline was met.
    fn try_stretch(&self, view: &SimView<'_>, s: f64) -> Attempt {
        let spec = view.spec();
        let mut jobs: Vec<(Time, JobId)> = view
            .pending_jobs()
            .map(|id| (view.deadline_under_stretch(id, s), id))
            .collect();
        jobs.sort();
        let mut proj = Projection::from_view(view);
        let mut feasible = true;
        let mut plan = Vec::with_capacity(jobs.len());
        for (d, id) in jobs {
            let job = view.job(id);
            let st = &view.state(id);
            let target = choose_target(&proj, view, id, spec);
            let completion = proj.place(job, st, target, spec, view.now);
            if !completion.approx_le(d) {
                feasible = false;
            }
            plan.push(PlanEntry {
                id,
                deadline: d,
                target,
            });
        }
        Attempt { feasible, plan }
    }

    /// Full recomputation at a release event.
    fn replan(&mut self, view: &SimView<'_>) {
        // Lower bound: the stretch each pending job is already forced to
        // (finishing as early as physically possible, alone).
        let mut lo = 1.0f64;
        for id in view.pending_jobs() {
            lo = lo.max(view.forced_stretch(id));
        }

        let best_plan: Attempt;
        let at_lo = self.probe(view, lo);
        if at_lo.feasible {
            best_plan = at_lo;
        } else {
            // Find a feasible upper bound by doubling.
            let mut hi = lo.max(1.0) * 2.0;
            let mut found = None;
            for _ in 0..64 {
                let attempt = self.probe(view, hi);
                if attempt.feasible {
                    found = Some((hi, attempt));
                    break;
                }
                hi *= 2.0;
            }
            match found {
                None => {
                    // Pathological: never feasible (EDF anomaly). Fall back
                    // to the last attempt's ordering as a best effort.
                    best_plan = self.probe(view, hi);
                }
                Some((mut hi, mut attempt)) => {
                    let mut lo = lo;
                    while hi - lo > self.eps_rel * lo {
                        let mid = 0.5 * (lo + hi);
                        let mid_attempt = self.probe(view, mid);
                        if mid_attempt.feasible {
                            hi = mid;
                            attempt = mid_attempt;
                        } else {
                            lo = mid;
                        }
                    }
                    if self.alpha != 1.0 {
                        attempt = self.probe(view, self.alpha * hi);
                    }
                    best_plan = attempt;
                }
            }
        }

        let plan = best_plan.plan;
        for entry in plan {
            self.deadlines[entry.id.0] = Some(entry.deadline);
            self.targets[entry.id.0] = Some(entry.target);
        }
    }
}

struct PlanEntry {
    id: JobId,
    deadline: Time,
    target: Target,
}

/// Earliest-projected-completion target with a *hysteresis* re-execution
/// guard. Two failure modes bracket the design space: comparing raw
/// projections lets every replan reshuffle in-flight jobs (>100
/// re-executions per 600 jobs, the lost progress dominating the stretch),
/// while an optimistic never-switch bar ratchets jobs onto congested
/// processors they can never leave. The middle ground: a switch must beat
/// the *projected* (queue-aware) continuation by more than the progress
/// the job would throw away.
fn choose_target(
    proj: &Projection,
    view: &SimView<'_>,
    id: JobId,
    spec: &mmsec_platform::PlatformSpec,
) -> Target {
    let st = &view.state(id);
    let job = view.job(id);
    // Time already invested in the committed attempt (what a switch wastes).
    let sunk = match st.committed {
        Some(Target::Edge) => st.work_done / spec.edge_speed(job.origin),
        Some(Target::Cloud(k)) => st.up_done + st.work_done / spec.cloud_speed(k) + st.dn_done,
        None => 0.0,
    };
    let bar: Option<Time> = st
        .committed
        .map(|t| proj.completion(job, st, t, spec, view.now) - Time::new(sunk));
    let mut best: Option<(Target, Time)> = None;
    let consider = |target: Target, best: &mut Option<(Target, Time)>| {
        if !view.target_available(job.origin, target) {
            return; // unit is down (fault injection): never place on it
        }
        let completion = proj.completion(job, st, target, spec, view.now);
        if st.committed != Some(target) {
            if let Some(bar) = bar {
                if completion >= bar {
                    return; // gain does not cover the sunk progress
                }
            }
        }
        if best.map_or(true, |(_, c)| completion < c) {
            *best = Some((target, completion));
        }
    };
    if let Some(t) = st.committed {
        consider(t, &mut best);
    }
    consider(Target::Edge, &mut best);
    for k in spec.clouds() {
        consider(Target::Cloud(k), &mut best);
    }
    // Every unit can be down at once under fault injection; park the job on
    // its committed target (or the edge) until something recovers — the
    // engine's resource blocking keeps it from actually starting there.
    best.map_or(st.committed.unwrap_or(Target::Edge), |(t, _)| t)
}

struct Attempt {
    feasible: bool,
    plan: Vec<PlanEntry>,
}

impl OnlineScheduler for SsfEdf {
    fn name(&self) -> String {
        if self.alpha == 1.0 {
            "ssf-edf".into()
        } else {
            format!("ssf-edf(a={})", self.alpha)
        }
    }

    fn cadence(&self) -> DecisionCadence {
        if self.incremental {
            DecisionCadence::OnEpochChange
        } else {
            DecisionCadence::EveryEvent
        }
    }

    fn on_start(&mut self, instance: &Instance) {
        self.deadlines = vec![None; instance.num_jobs()];
        self.targets = vec![None; instance.num_jobs()];
        self.order.clear();
    }

    fn attach_observer(&mut self, observer: ObserverHandle) {
        self.observer = Some(observer);
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        // Streaming sessions admit jobs after `on_start`.
        if self.deadlines.len() < view.jobs.len() {
            self.deadlines.resize(view.jobs.len(), None);
            self.targets.resize(view.jobs.len(), None);
        }
        // Platform mutation: the plan's targets may point at removed
        // units and its deadlines assume stale speeds — void it all.
        if self.platform_version != view.platform_version() {
            self.platform_version = view.platform_version();
            self.deadlines.fill(None);
            self.targets.fill(None);
            self.order.clear();
        }
        // Release event ⇔ some pending job has no deadline yet.
        let replanned = if view.pending_jobs().any(|id| self.deadlines[id.0].is_none()) {
            self.replan(view);
            true
        } else {
            false
        };
        if replanned || !self.incremental {
            // A replan rewrote every pending deadline: rebuild the order.
            self.order.clear();
            self.order.extend(
                view.pending_jobs()
                    .map(|id| (self.deadlines[id.0].expect("planned"), id)),
            );
            self.order.sort();
        } else {
            // Deadlines unchanged since the last call: the order only
            // shrinks by the jobs that completed in between. Newly
            // released jobs cannot appear here — they have no deadline
            // yet, which forces the replan branch above (stale inserts
            // from a prior rebuild are already in the order). A `None`
            // deadline means a platform bump voided the plan after the
            // job was planned — `order` was cleared with it, nothing to
            // drop.
            for &id in view.delta_removed() {
                let Some(d) = self.deadlines[id.0] else {
                    continue;
                };
                let key = (d, id);
                if let Ok(pos) = self.order.binary_search(&key) {
                    self.order.remove(pos);
                }
            }
        }
        for &(_, id) in &self.order {
            out.push(id, self.targets[id.0].expect("planned"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{
        figure1_instance, max_stretch, validate, CloudId, EdgeId, Instance, Job, PlatformSpec,
        Simulation, StretchReport,
    };

    #[test]
    fn single_job_gets_stretch_one() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(1)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 0.0, 2.0, 10.0, 10.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        assert!((max_stretch(&inst, &out.schedule) - 1.0).abs() < 1e-9);
        assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
    }

    #[test]
    fn paper_edf_counterexample_still_schedules() {
        // §V-D: two jobs w=3 with deadlines 5 and 6 on one cloud
        // (up=dn=... the example uses uplink 1 implicitly): EDF order can
        // miss a deadline that another order meets. SSF-EDF still produces
        // a valid schedule, possibly with a larger stretch.
        let spec = PlatformSpec::builder()
            .edges(vec![0.1])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 3.0, 1.0, 0.0),
            Job::new(EdgeId(0), 0.0, 3.0, 1.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        assert!(out.schedule.all_finished());
    }

    #[test]
    fn intro_example_short_first() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        let ms = max_stretch(&inst, &out.schedule);
        assert!((ms - 1.1).abs() < 1e-2, "max stretch {ms}");
    }

    #[test]
    fn figure1_instance_reasonable_stretch() {
        // The optimal max-stretch of the Figure 1 instance is 3/2; SSF-EDF
        // should land reasonably close (it is a heuristic).
        let inst = figure1_instance();
        let out = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        let ms = max_stretch(&inst, &out.schedule);
        assert!(ms < 2.5, "max stretch {ms}");
    }

    #[test]
    fn balances_over_cloud_processors() {
        // Four identical cloud-friendly jobs from different edges, two
        // clouds: the plan must spread them.
        let spec = PlatformSpec::builder()
            .edges(vec![0.05; 4])
            .cloud_pool(2)
            .build();
        let jobs: Vec<_> = (0..4)
            .map(|i| Job::new(EdgeId(i), 0.0, 4.0, 0.5, 0.5))
            .collect();
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        let on_cloud0 = out
            .schedule
            .alloc
            .iter()
            .filter(|a| **a == Some(Target::Cloud(CloudId(0))))
            .count();
        let on_cloud1 = out
            .schedule
            .alloc
            .iter()
            .filter(|a| **a == Some(Target::Cloud(CloudId(1))))
            .count();
        assert_eq!(on_cloud0 + on_cloud1, 4, "all jobs offloaded");
        assert_eq!(on_cloud0, 2);
        assert_eq!(on_cloud1, 2);
    }

    #[test]
    fn online_stream_keeps_stretch_bounded() {
        // Staggered stream: SSF-EDF keeps the max-stretch modest.
        let spec = PlatformSpec::builder()
            .edges(vec![0.5, 0.5])
            .cloud_pool(2)
            .build();
        let mut jobs = Vec::new();
        for i in 0..12 {
            jobs.push(Job::new(
                EdgeId(i % 2),
                i as f64 * 1.5,
                2.0 + (i % 3) as f64,
                0.5,
                0.5,
            ));
        }
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        let report = StretchReport::new(&inst, &out.schedule);
        assert!(
            report.max_stretch < 3.0,
            "max stretch {}",
            report.max_stretch
        );
    }

    #[test]
    fn alpha_ablation_runs() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.5, 0.5),
            Job::new(EdgeId(0), 1.0, 1.0, 0.5, 0.5),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        for alpha in [0.5, 1.0, 2.0] {
            let mut pol = SsfEdf::with_params(alpha, 1e-3);
            let out = Simulation::of(&inst).policy(&mut pol).run().unwrap();
            assert!(validate(&inst, &out.schedule).is_ok(), "alpha {alpha}");
        }
        assert_eq!(SsfEdf::with_params(2.0, 1e-3).name(), "ssf-edf(a=2)");
    }

    #[test]
    fn is_deterministic() {
        let inst = figure1_instance();
        let a = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        let b = Simulation::of(&inst)
            .policy(&mut SsfEdf::new())
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn hysteresis_switches_only_when_gain_exceeds_sunk_progress() {
        use mmsec_platform::projection::Projection;
        use mmsec_platform::{Instance, Job, JobArena, JobState, PendingSet, SimView};
        use mmsec_sim::Time;

        let spec = PlatformSpec::builder()
            .edges(vec![0.01])
            .cloud_pool(2)
            .build();
        // Job: work 4, up 1, dn 1; committed to cloud 0 with its uplink
        // done (sunk = 1), except where a case overrides `up_done`.
        let job = Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0);
        let inst = Instance::new(spec, vec![job]).unwrap();
        let state_with_up_done = |up_done: f64| JobState {
            released: true,
            committed: Some(Target::Cloud(CloudId(0))),
            up_done,
            ..JobState::default()
        };

        // Case 1: cloud 0 lightly queued (2 seconds) — continuation
        // projects 2 + 5 = 7 from now; switching to idle cloud 1 projects
        // 6, a gain of 1 which does NOT exceed... it must beat
        // (projected − sunk) = 7 − 1 = 6 strictly: 6 ≥ 6 → stay.
        {
            let states = vec![state_with_up_done(1.0)];
            let arena = JobArena::from_states(&inst, &states);
            let pending = PendingSet::from_states(&inst, &states);
            let view = SimView::new(&inst, Time::new(10.0), &arena, &pending);
            let mut proj = Projection::from_view(&view);
            // Occupy cloud 0's CPU for 2 seconds with a phantom booking.
            let phantom = Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0);
            let fresh = JobState {
                released: true,
                ..JobState::default()
            };
            proj.place(
                &phantom,
                &fresh,
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now,
            );
            let t = super::choose_target(&proj, &view, JobId(0), view.spec());
            assert_eq!(t, Target::Cloud(CloudId(0)), "small gain must not switch");
        }

        // Case 2: cloud 0 deeply queued (10 seconds) — continuation
        // projects 15, bar = 14; fresh cloud 1 projects 6 < 14 → switch.
        {
            let states = vec![state_with_up_done(1.0)];
            let arena = JobArena::from_states(&inst, &states);
            let pending = PendingSet::from_states(&inst, &states);
            let view = SimView::new(&inst, Time::new(10.0), &arena, &pending);
            let mut proj = Projection::from_view(&view);
            let phantom = Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0);
            let fresh = JobState {
                released: true,
                ..JobState::default()
            };
            proj.place(
                &phantom,
                &fresh,
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now,
            );
            let t = super::choose_target(&proj, &view, JobId(0), view.spec());
            assert_eq!(t, Target::Cloud(CloudId(1)), "large gain must switch");
        }

        // Case 3: no progress — free to pick the projected best.
        {
            let states = vec![state_with_up_done(0.0)];
            let arena = JobArena::from_states(&inst, &states);
            let pending = PendingSet::from_states(&inst, &states);
            let view = SimView::new(&inst, Time::new(10.0), &arena, &pending);
            let mut proj = Projection::from_view(&view);
            let phantom = Job::new(EdgeId(0), 0.0, 3.0, 0.0, 0.0);
            let fresh = JobState {
                released: true,
                ..JobState::default()
            };
            proj.place(
                &phantom,
                &fresh,
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now,
            );
            let t = super::choose_target(&proj, &view, JobId(0), view.spec());
            assert_eq!(t, Target::Cloud(CloudId(1)));
        }
    }
}
