//! The **Greedy** heuristic (paper §V-B).
//!
//! At each event, as long as resources remain available: compute, for each
//! pending job, the minimum stretch it could achieve by starting
//! immediately on an available resource; select the job *maximizing* this
//! value (the job most endangering the max-stretch objective) and place it
//! on the resource achieving its minimum; claim the resources and repeat.

use crate::placing::{stretch_at, RoundState};
use mmsec_platform::{DirectiveBuffer, Instance, JobId, OnlineScheduler, SimView};

/// Greedy max-imminent-stretch-first policy.
#[derive(Clone, Debug, Default)]
pub struct Greedy {
    /// Reusable list of not-yet-placed jobs for the selection loop.
    unassigned: Vec<JobId>,
    /// Run-long round state, rebuilt in place at each decide; dropped in
    /// `on_start` so a new run (possibly a new platform) starts fresh.
    round: Option<RoundState>,
}

impl Greedy {
    /// Creates the policy.
    pub fn new() -> Self {
        Greedy::default()
    }
}

impl OnlineScheduler for Greedy {
    fn name(&self) -> String {
        "greedy".into()
    }

    fn on_start(&mut self, _instance: &Instance) {
        self.round = None;
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        let round = match self.round.as_mut() {
            Some(r) => {
                r.reset(view);
                r
            }
            None => self.round.insert(RoundState::new(view)),
        };
        let unassigned = &mut self.unassigned;
        unassigned.clear();
        unassigned.extend(view.pending_jobs());

        while !unassigned.is_empty() {
            // For each job: its best immediately startable option. Ties on
            // the stretch are broken towards the job with the smallest
            // dedicated time: among equal current stretches, that job's
            // stretch grows fastest per unit of delay (at rate
            // 1/min_time), so it "might impact most the maximum stretch".
            let mut pick: Option<(usize, JobId, crate::placing::StartOption, f64, f64)> = None;
            for (pos, &id) in unassigned.iter().enumerate() {
                let Some(opt) = round.best_startable(view, id) else {
                    continue;
                };
                let s = stretch_at(view, id, opt.completion);
                let mt = view.job(id).min_time(view.spec());
                let better = match &pick {
                    None => true,
                    Some((_, bid, _, bs, bmt)) => {
                        s > *bs || (s == *bs && mt < *bmt) || (s == *bs && mt == *bmt && id < *bid)
                    }
                };
                if better {
                    pick = Some((pos, id, opt, s, mt));
                }
            }
            let Some((pos, id, opt, _, _)) = pick else {
                break; // nothing can start anymore
            };
            // `opt` was computed against the current round (the selection
            // sweep above never mutates it), so the cached phase/forecast
            // can be applied directly instead of recomputed.
            round.claim_option(view, id, &opt);
            out.push(id, opt.target);
            unassigned.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{
        max_stretch, validate, EdgeId, Instance, Job, PlatformSpec, Simulation, Target,
    };

    #[test]
    fn prioritizes_job_with_worst_imminent_stretch() {
        // One edge (speed 1), no cloud. Two jobs released together: a short
        // one (would reach stretch 2 if delayed) and a long one (barely
        // affected). Greedy must run the short one first... actually at
        // t=0 both estimate stretch 1; greedy picks the max = tie → lowest
        // id. After the first completes, the other runs.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Greedy::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        assert!(out.schedule.all_finished());
    }

    #[test]
    fn offloads_to_cloud_when_beneficial() {
        // Slow edge, fast cloud, cheap communications: both jobs go cloud.
        let spec = PlatformSpec::builder()
            .edges(vec![0.1])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 4.0, 0.1, 0.1),
            Job::new(EdgeId(0), 0.0, 4.0, 0.1, 0.1),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Greedy::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        assert!(matches!(out.schedule.alloc[0], Some(Target::Cloud(_))));
        assert!(matches!(out.schedule.alloc[1], Some(Target::Cloud(_))));
        // Two cloud processors: jobs run in parallel, stretches near 1
        // (second uplink serialized behind the first: ≤ (4.3)/4.2).
        let ms = max_stretch(&inst, &out.schedule);
        assert!(ms < 1.1, "max stretch {ms}");
    }

    #[test]
    fn keeps_jobs_local_when_comm_dominates() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 50.0, 50.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Greedy::new())
            .run()
            .unwrap();
        assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
        assert!((max_stretch(&inst, &out.schedule) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_cloud_usage_across_edges() {
        // Two edges each with one job; two clouds; communications from
        // different edges proceed in parallel (independent pairs).
        let spec = PlatformSpec::builder()
            .edges(vec![0.1, 0.1])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.5, 0.5),
            Job::new(EdgeId(1), 0.0, 2.0, 0.5, 0.5),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Greedy::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        // Both should finish at 3.0 (fully parallel), stretch 1.
        let ms = max_stretch(&inst, &out.schedule);
        assert!((ms - 1.0).abs() < 1e-9, "max stretch {ms}");
        assert_eq!(out.schedule.completion[0], out.schedule.completion[1]);
    }

    #[test]
    fn respects_cloud_choice_by_id_determinism() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.1])
            .cloud_pool(3)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 0.1, 0.1)];
        let inst = Instance::new(spec, jobs).unwrap();
        let a = Simulation::of(&inst)
            .policy(&mut Greedy::new())
            .run()
            .unwrap();
        let b = Simulation::of(&inst)
            .policy(&mut Greedy::new())
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
    }
}
