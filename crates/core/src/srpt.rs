//! The **SRPT** heuristic (paper §V-C).
//!
//! Shortest Remaining Processing Time, adapted to the edge-cloud setting:
//! at each event, repeatedly choose the (job, processor) pair that can
//! complete the earliest and claim it, until no job can start. Migration
//! is impossible, but a preempted job may *re-execute from scratch* on
//! another processor when that is how it finishes first — the from-scratch
//! penalty is part of the completion estimate.

use crate::placing::{RoundState, StartOption};
use mmsec_platform::{DirectiveBuffer, Instance, JobId, OnlineScheduler, SimView};
use mmsec_sim::Time;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One lazy-heap entry: the (completion, id) key the job was filed under,
/// plus the full [`StartOption`] it came from and the round's claim count
/// when it was computed. If the count is unchanged at pop time, the cached
/// option is exact (nothing mutated the round since) and the recompute is
/// skipped entirely; otherwise it is refreshed as before. Ordering is by
/// key alone — keys are unique (they embed the id), so `Eq`/`Ord` on the
/// key is a total order over entries.
#[derive(Clone, Debug)]
struct HeapEntry {
    key: Reverse<(Time, JobId)>,
    tag: u32,
    opt: StartOption,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// Earliest-estimated-completion-first policy.
#[derive(Clone, Debug, Default)]
pub struct Srpt {
    /// Reusable min-heap keyed by (completion, id), kept across events so
    /// the decide hot path reuses its backing allocation.
    heap: BinaryHeap<HeapEntry>,
    /// Run-long round state, rebuilt in place at each decide; dropped in
    /// `on_start` so a new run (possibly a new platform) starts fresh.
    round: Option<RoundState>,
}

impl Srpt {
    /// Creates the policy.
    pub fn new() -> Self {
        Srpt::default()
    }
}

impl OnlineScheduler for Srpt {
    fn name(&self) -> String {
        "srpt".into()
    }

    fn on_start(&mut self, _instance: &Instance) {
        self.round = None;
    }

    /// Repeatedly picks the globally earliest-completing (job, target)
    /// pair with a *lazy* min-heap: within one round, every claim only
    /// pushes estimates later (the projection's free times move forward,
    /// resources only become busier), so a popped entry whose refreshed
    /// estimate still beats the heap's next key is the true minimum. This
    /// replaces the quadratic rescans of the naive matching loop — the
    /// reason SRPT stays fast under load while Greedy does not (§VI-B).
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        let round = match self.round.as_mut() {
            Some(r) => {
                r.reset(view);
                r
            }
            None => self.round.insert(RoundState::new(view)),
        };
        // Min-heap keyed by (completion, id); ties resolve to smaller id,
        // matching the exact scan.
        self.heap.clear();
        for id in view.pending_jobs() {
            if let Some(opt) = round.best_startable(view, id) {
                self.heap.push(HeapEntry {
                    key: Reverse((opt.completion, id)),
                    tag: round.claim_count(),
                    opt,
                });
            }
        }
        while let Some(entry) = self.heap.pop() {
            let Reverse((_, id)) = entry.key;
            // Repair the cached option against only what the claims since
            // the entry was computed actually wrote (usually nothing this
            // job reads, or one or two clouds to re-score); the full
            // rescan runs only when the interference can't be localized.
            let Some(opt) = round.refresh_option(view, id, entry.tag, &entry.opt) else {
                continue; // can no longer start in this round
            };
            let tag = round.claim_count();
            let is_min = self.heap.peek().map_or(true, |next| {
                let Reverse((nc, nid)) = next.key;
                opt.completion < nc || (opt.completion == nc && id < nid)
            });
            if is_min {
                round.claim_option(view, id, &opt);
                out.push(id, opt.target);
            } else {
                self.heap.push(HeapEntry {
                    key: Reverse((opt.completion, id)),
                    tag,
                    opt,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{
        max_stretch, validate, EdgeId, Instance, Job, PlatformSpec, Simulation, StretchReport,
        Target,
    };

    #[test]
    fn short_jobs_jump_the_queue() {
        // One unit-speed edge, no cloud. A long job starts; a short job
        // released later preempts it (its remaining time is smaller).
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
            Job::new(EdgeId(0), 2.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Srpt::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        // Short job runs [2,3), long job [0,2) ∪ [3,11).
        assert_eq!(out.schedule.completion[1], Some(mmsec_sim::Time::new(3.0)));
        assert_eq!(out.schedule.completion[0], Some(mmsec_sim::Time::new(11.0)));
        let report = StretchReport::new(&inst, &out.schedule);
        assert!((report.stretches[1] - 1.0).abs() < 1e-9);
        assert!((report.stretches[0] - 1.1).abs() < 1e-9);
    }

    #[test]
    fn long_job_can_starve_behind_stream_of_short_ones() {
        // The known weakness of SRPT for MAX-stretch (§V-C): a long job is
        // repeatedly preempted by short jobs and its stretch grows.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let mut jobs = vec![Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0)];
        for i in 0..20 {
            jobs.push(Job::new(EdgeId(0), i as f64, 1.0, 0.0, 0.0));
        }
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Srpt::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        let report = StretchReport::new(&inst, &out.schedule);
        // The long job's stretch far exceeds the short ones'.
        assert!(report.stretches[0] > 2.0);
        assert_eq!(report.argmax, Some(mmsec_platform::JobId(0)));
    }

    #[test]
    fn picks_cloud_for_cloud_friendly_jobs() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.1])
            .cloud_pool(1)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 0.0, 5.0, 0.5, 0.5)];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Srpt::new())
            .run()
            .unwrap();
        assert!(matches!(out.schedule.alloc[0], Some(Target::Cloud(_))));
        assert!((max_stretch(&inst, &out.schedule) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reexecution_when_beneficial() {
        // Job A computes on the single cloud; a tiny job B arrives and
        // preempts the cloud CPU; meanwhile A's best completion may be a
        // fresh start on the edge... construct a case where SRPT restarts
        // a job and the result still validates.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 6.0, 3.0, 3.0),   // cloud 12, edge 6
            Job::new(EdgeId(0), 1.0, 1.0, 10.0, 10.0), // must run on edge
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Srpt::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        assert!(out.schedule.all_finished());
    }

    /// Reference SRPT: the identical selection loop, but every popped
    /// entry is recomputed unconditionally — no claim-count tag, no
    /// claim-log exemption. The production policy's caching must be
    /// invisible against it.
    struct SrptNaive {
        round: Option<RoundState>,
    }

    impl OnlineScheduler for SrptNaive {
        fn name(&self) -> String {
            "srpt-naive".into()
        }

        fn on_start(&mut self, _instance: &Instance) {
            self.round = None;
        }

        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            let round = match self.round.as_mut() {
                Some(r) => {
                    r.reset(view);
                    r
                }
                None => self.round.insert(RoundState::new(view)),
            };
            let mut heap: BinaryHeap<Reverse<(Time, JobId)>> = BinaryHeap::new();
            for id in view.pending_jobs() {
                if let Some(opt) = round.best_startable(view, id) {
                    heap.push(Reverse((opt.completion, id)));
                }
            }
            while let Some(Reverse((_, id))) = heap.pop() {
                let Some(opt) = round.best_startable(view, id) else {
                    continue;
                };
                let is_min = heap.peek().map_or(true, |&Reverse((nc, nid))| {
                    opt.completion < nc || (opt.completion == nc && id < nid)
                });
                if is_min {
                    round.claim(view, id, opt.target);
                    out.push(id, opt.target);
                } else {
                    heap.push(Reverse((opt.completion, id)));
                }
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_instance() -> impl Strategy<Value = Instance> {
            (
                1usize..4,                                 // edges
                0usize..4,                                 // clouds
                proptest::collection::vec(0.2f64..2.5, 3), // cloud speed pool
                proptest::collection::vec(
                    (
                        0.0f64..16.0, // release
                        0.1f64..6.0,  // work
                        0.0f64..4.0,  // up
                        0.0f64..4.0,  // dn
                        0usize..4,    // origin
                    ),
                    1..12,
                ),
                proptest::collection::vec(0.1f64..1.2, 1..4), // edge speeds
            )
                .prop_map(|(ne, nc, cloud_pool, raw_jobs, speeds)| {
                    let mut edge_speeds = speeds;
                    edge_speeds.resize(ne, 0.5);
                    // Repeating pool entries produce speed classes with
                    // several members — the scan's sharing path.
                    let cloud_speeds: Vec<f64> =
                        (0..nc).map(|k| cloud_pool[k % cloud_pool.len()]).collect();
                    let spec = PlatformSpec::builder()
                        .edges(edge_speeds)
                        .clouds(cloud_speeds)
                        .build();
                    let jobs = raw_jobs
                        .into_iter()
                        .map(|(r, w, up, dn, o)| Job::new(EdgeId(o % ne), r, w, up, dn))
                        .collect();
                    Instance::new(spec, jobs).expect("generated instance valid")
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// End-to-end schedule equality: the lazy heap with the
            /// claim-count tag and the claim-log staleness exemption
            /// versus the recompute-every-pop reference.
            #[test]
            fn caching_matches_naive_recompute(inst in arb_instance()) {
                let fast = Simulation::of(&inst)
                    .policy(&mut Srpt::new())
                    .run()
                    .unwrap();
                let naive = Simulation::of(&inst)
                    .policy(&mut SrptNaive { round: None })
                    .run()
                    .unwrap();
                prop_assert_eq!(fast.schedule, naive.schedule);
            }
        }
    }

    #[test]
    fn is_deterministic() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5, 0.2])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 3.0, 1.0, 1.0),
            Job::new(EdgeId(1), 0.5, 2.0, 0.2, 0.2),
            Job::new(EdgeId(0), 1.0, 1.0, 5.0, 5.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let a = Simulation::of(&inst)
            .policy(&mut Srpt::new())
            .run()
            .unwrap();
        let b = Simulation::of(&inst)
            .policy(&mut Srpt::new())
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
    }
}
