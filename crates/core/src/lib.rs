//! `mmsec-core` — the scheduling heuristics of *Max-Stretch Minimization
//! on an Edge-Cloud Platform* (Benoit, Elghazi, Robert — IPDPS 2021, §V).
//!
//! Four policies from the paper:
//!
//! * [`EdgeOnly`] (§V-A) — no cloud; Bender et al. stretch-so-far EDF per
//!   edge unit;
//! * [`Greedy`] (§V-B) — place first the job whose best immediately
//!   achievable stretch is worst;
//! * [`Srpt`] (§V-C) — earliest-estimated-completion first, with
//!   re-execution from scratch in lieu of migration;
//! * [`SsfEdf`] (§V-D) — binary search on the target stretch, EDF order,
//!   earliest-projected-completion processor selection: the paper's best
//!   heuristic.
//!
//! Plus reference baselines ([`Fcfs`], [`CloudOnly`], [`RandomSticky`])
//! and a [`PolicyKind`] registry for the experiment harness.
//!
//! # Example
//!
//! ```
//! use mmsec_core::SsfEdf;
//! use mmsec_platform::{figure1_instance, max_stretch, validate, Simulation};
//!
//! let instance = figure1_instance();
//! let out = Simulation::of(&instance).policy(&mut SsfEdf::new()).run().unwrap();
//! assert!(validate(&instance, &out.schedule).is_ok());
//! assert!(max_stretch(&instance, &out.schedule) >= 1.5); // optimum is 3/2
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod bender;
pub mod edge_only;
pub mod greedy;
pub mod placing;
pub mod registry;
pub mod srpt;
pub mod ssf_edf;

pub use baselines::{CloudOnly, Fcfs, RandomSticky};
pub use edge_only::EdgeOnly;
pub use greedy::Greedy;
pub use registry::PolicyKind;
pub use srpt::Srpt;
pub use ssf_edf::SsfEdf;
