//! Single-machine *stretch-so-far EDF* machinery (Bender et al. \[3\], \[4\]).
//!
//! On one machine with preemption, when every considered job is already
//! released, earliest-deadline-first is feasibility-optimal and
//! feasibility of a deadline set has a closed form: sort by deadline and
//! check the prefix sums of remaining processing times,
//! `Σ_{d_j ≤ d_i} p_j ≤ d_i − now` for all `i`.
//!
//! For a target stretch `S`, deadlines are `d_i = r_i + S · t_i^min` where
//! `t_i^min` is the best dedicated-platform time of the job (the paper's
//! edge-cloud correction: the denominator accounts for a potential cloud
//! execution even when scheduling locally). The minimum feasible `S` is
//! found by binary search to a relative precision `ε` — exactly the
//! mechanism SSF-EDF (§V-D) and Edge-Only (§V-A) build on.

use mmsec_platform::JobId;
use mmsec_sim::time::approx;
use mmsec_sim::Time;

/// A released job as seen by the single-machine scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReleasedJob {
    /// Job identity (carried through for reporting).
    pub id: JobId,
    /// Release date `r_i`.
    pub release: Time,
    /// *Remaining* processing time on this machine.
    pub proc_time: f64,
    /// Best dedicated-platform time `min(t^e_i, t^c_i)` (stretch denominator).
    pub min_time: f64,
}

/// Deadline of a job under target stretch `s`.
#[inline]
pub fn deadline(job: &ReleasedJob, s: f64) -> Time {
    job.release + Time::new(s * job.min_time)
}

/// Feasibility of target stretch `s` at time `now` for already-released
/// jobs on one machine with preemptive EDF (exact).
pub fn edf_feasible(now: Time, jobs: &[ReleasedJob], s: f64) -> bool {
    let mut deadlines: Vec<(f64, f64)> = jobs
        .iter()
        .map(|j| (deadline(j, s).seconds(), j.proc_time))
        .collect();
    deadlines.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut load = 0.0;
    for (d, p) in deadlines {
        load += p;
        if !approx::le(now.seconds() + load, d) {
            return false;
        }
    }
    true
}

/// Largest stretch already *forced* at `now`: even if some job ran alone
/// and immediately, its stretch would be at least this.
pub fn forced_stretch(now: Time, jobs: &[ReleasedJob]) -> f64 {
    jobs.iter()
        .map(|j| (now.seconds() + j.proc_time - j.release.seconds()) / j.min_time)
        .fold(1.0, f64::max)
}

/// Minimum feasible target stretch at `now` for the released jobs, to
/// relative precision `eps_rel` (binary search; paper §V-D).
pub fn optimal_stretch_so_far(now: Time, jobs: &[ReleasedJob], eps_rel: f64) -> f64 {
    assert!(eps_rel > 0.0);
    if jobs.is_empty() {
        return 1.0;
    }
    let mut lo = forced_stretch(now, jobs);
    if edf_feasible(now, jobs, lo) {
        return lo;
    }
    // Find a feasible upper bound by doubling.
    let mut hi = lo.max(1.0) * 2.0;
    let mut doubles = 0;
    while !edf_feasible(now, jobs, hi) {
        hi *= 2.0;
        doubles += 1;
        assert!(
            doubles < 128,
            "no feasible stretch found (inconsistent input)"
        );
    }
    // Binary search [lo, hi).
    while hi - lo > eps_rel * lo {
        let mid = 0.5 * (lo + hi);
        if edf_feasible(now, jobs, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Jobs sorted by EDF priority under target stretch `s` (ties by id for
/// determinism).
pub fn edf_order(jobs: &[ReleasedJob], s: f64) -> Vec<ReleasedJob> {
    let mut sorted = jobs.to_vec();
    sorted.sort_by(|a, b| {
        deadline(a, s)
            .cmp(&deadline(b, s))
            .then_with(|| a.id.cmp(&b.id))
    });
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, release: f64, proc_time: f64, min_time: f64) -> ReleasedJob {
        ReleasedJob {
            id: JobId(id),
            release: Time::new(release),
            proc_time,
            min_time,
        }
    }

    #[test]
    fn single_job_stretch_one() {
        let jobs = [job(0, 0.0, 4.0, 4.0)];
        assert!(edf_feasible(Time::ZERO, &jobs, 1.0));
        let s = optimal_stretch_so_far(Time::ZERO, &jobs, 1e-9);
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn intro_example_optimal_order() {
        // 1-hour and 10-hour jobs released together on one unit-speed
        // machine: optimal max-stretch is 1.1 (short job first).
        let jobs = [job(0, 0.0, 1.0, 1.0), job(1, 0.0, 10.0, 10.0)];
        assert!(edf_feasible(Time::ZERO, &jobs, 1.1));
        assert!(!edf_feasible(Time::ZERO, &jobs, 1.05));
        let s = optimal_stretch_so_far(Time::ZERO, &jobs, 1e-6);
        assert!((s - 1.1).abs() < 1e-4, "s = {s}");
        // EDF order at the optimum runs the short job first.
        let order = edf_order(&jobs, s);
        assert_eq!(order[0].id, JobId(0));
    }

    #[test]
    fn forced_stretch_accounts_elapsed_time() {
        // Job released at 0, 1 unit remaining, at now = 9: stretch ≥ 10.
        let jobs = [job(0, 0.0, 1.0, 1.0)];
        let f = forced_stretch(Time::new(9.0), &jobs);
        assert!((f - 10.0).abs() < 1e-12);
        let s = optimal_stretch_so_far(Time::new(9.0), &jobs, 1e-9);
        assert!((s - 10.0).abs() < 1e-6);
    }

    #[test]
    fn denominator_may_differ_from_processing() {
        // Edge-cloud correction: a job processed in 6 locally but with
        // min_time 4 (cloud would take 4) has stretch ≥ 1.5 locally.
        let jobs = [job(0, 0.0, 6.0, 4.0)];
        let s = optimal_stretch_so_far(Time::ZERO, &jobs, 1e-9);
        assert!((s - 1.5).abs() < 1e-6);
    }

    #[test]
    fn three_jobs_same_length() {
        // Three unit jobs released together: completions 1, 2, 3 → optimal
        // max stretch 3.
        let jobs = [
            job(0, 0.0, 1.0, 1.0),
            job(1, 0.0, 1.0, 1.0),
            job(2, 0.0, 1.0, 1.0),
        ];
        let s = optimal_stretch_so_far(Time::ZERO, &jobs, 1e-6);
        assert!((s - 3.0).abs() < 1e-3, "s = {s}");
    }

    #[test]
    fn binary_search_converges_from_infeasible_lower_bound() {
        // Staggered releases where the forced bound is loose.
        let jobs = [
            job(0, 0.0, 5.0, 5.0),
            job(1, 1.0, 1.0, 1.0),
            job(2, 2.0, 2.0, 2.0),
        ];
        let s = optimal_stretch_so_far(Time::new(3.0), &jobs, 1e-6);
        assert!(edf_feasible(Time::new(3.0), &jobs, s));
        assert!(!edf_feasible(Time::new(3.0), &jobs, s * 0.98));
    }

    #[test]
    fn edf_order_breaks_ties_by_id() {
        let jobs = [job(1, 0.0, 1.0, 2.0), job(0, 0.0, 1.0, 2.0)];
        let order = edf_order(&jobs, 1.0);
        assert_eq!(order[0].id, JobId(0));
        assert_eq!(order[1].id, JobId(1));
    }

    #[test]
    fn empty_job_set() {
        assert_eq!(optimal_stretch_so_far(Time::ZERO, &[], 1e-3), 1.0);
        assert!(edf_feasible(Time::ZERO, &[], 1.0));
        assert_eq!(forced_stretch(Time::ZERO, &[]), 1.0);
    }
}
