//! Additional baseline policies (not in the paper's evaluation, but useful
//! reference points for the experiment suite and for tests).

use mmsec_platform::projection::Projection;
use mmsec_platform::{
    DecisionCadence, DirectiveBuffer, Instance, OnlineScheduler, SimView, Target,
};
use mmsec_sim::seed::SplitMix64;

/// First-come-first-served: jobs by release date; each job is placed once,
/// on the target with the earliest projected completion at placement time,
/// and never reconsidered.
#[derive(Clone, Debug, Default)]
pub struct Fcfs {
    chosen: Vec<Option<Target>>,
    /// Run-long projection, rebuilt in place only at decides that place a
    /// new job — steady-state decides allocate nothing.
    proj: Option<Projection>,
}

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl OnlineScheduler for Fcfs {
    fn name(&self) -> String {
        "fcfs".into()
    }

    fn cadence(&self) -> DecisionCadence {
        DecisionCadence::OnEpochChange
    }

    fn on_start(&mut self, instance: &Instance) {
        self.chosen = vec![None; instance.num_jobs()];
        self.proj = None;
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        // Streaming sessions admit jobs after `on_start`.
        if self.chosen.len() < view.jobs.len() {
            self.chosen.resize(view.jobs.len(), None);
        }
        let spec = view.spec();
        // `pending_jobs()` iterates in (release, id) order — exactly the
        // FIFO priority this policy wants; no sort needed.
        // Place newly seen jobs with a shared projection so that a burst
        // of simultaneous arrivals spreads over the platform; the
        // projection is (re)initialized lazily, at the first job that
        // actually needs placing this call.
        let mut proj_ready = false;
        for id in view.pending_jobs() {
            let job = view.job(id);
            // Fault injection: a sticky choice whose unit went down is
            // dropped and re-made among the units still up.
            if self.chosen[id.0].is_some_and(|t| !view.target_available(job.origin, t)) {
                self.chosen[id.0] = None;
            }
            if self.chosen[id.0].is_none() {
                if !proj_ready {
                    match self.proj.as_mut() {
                        Some(p) => p.reset_for(view),
                        None => self.proj = Some(Projection::from_view(view)),
                    }
                    proj_ready = true;
                }
                let proj = self.proj.as_mut().expect("initialized above");
                let st = &view.state(id);
                let (target, _) = proj.best_target(job, st, spec, view.now);
                let target = if view.target_available(job.origin, target) {
                    Some(target)
                } else {
                    // The projected best is down: best available fallback.
                    let mut best: Option<(Target, mmsec_sim::Time)> = None;
                    let mut consider = |t: Target| {
                        if !view.target_available(job.origin, t) {
                            return;
                        }
                        let c = proj.completion(job, st, t, spec, view.now);
                        if best.map_or(true, |(_, bc)| c < bc) {
                            best = Some((t, c));
                        }
                    };
                    consider(Target::Edge);
                    for k in spec.clouds() {
                        consider(Target::Cloud(k));
                    }
                    best.map(|(t, _)| t)
                };
                // Everything down: leave the job unplaced this round.
                let Some(target) = target else { continue };
                proj.place(job, st, target, spec, view.now);
                self.chosen[id.0] = Some(target);
            }
            out.push(id, self.chosen[id.0].expect("placed above"));
        }
    }
}

/// Cloud-Only: the mirror image of Edge-Only — every job is delegated to
/// the cloud, choosing the cloud processor with the earliest projected
/// completion at first placement; FIFO priority.
#[derive(Clone, Debug, Default)]
pub struct CloudOnly {
    chosen: Vec<Option<Target>>,
    /// Run-long projection, rebuilt in place only at decides that place a
    /// new job — steady-state decides allocate nothing.
    proj: Option<Projection>,
}

impl CloudOnly {
    /// Creates the policy.
    pub fn new() -> Self {
        CloudOnly::default()
    }
}

impl OnlineScheduler for CloudOnly {
    fn name(&self) -> String {
        "cloud-only".into()
    }

    fn cadence(&self) -> DecisionCadence {
        DecisionCadence::OnEpochChange
    }

    fn on_start(&mut self, instance: &Instance) {
        self.chosen = vec![None; instance.num_jobs()];
        self.proj = None;
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        // Checked here, against the live platform, rather than in
        // `on_start` against the frozen instance: a mutable session may
        // start cloudless and grow clouds before the first job arrives.
        assert!(
            view.spec().num_cloud() > 0 || view.pending_jobs().next().is_none(),
            "cloud-only policy needs a cloud"
        );
        // Streaming sessions admit jobs after `on_start`.
        if self.chosen.len() < view.jobs.len() {
            self.chosen.resize(view.jobs.len(), None);
        }
        let spec = view.spec();
        let mut proj_ready = false;
        // (release, id) iteration order = FIFO priority.
        for id in view.pending_jobs() {
            // Fault injection: re-pick when the sticky cloud went down.
            if self.chosen[id.0]
                .is_some_and(|t| matches!(t, Target::Cloud(k) if !view.cloud_available(k)))
            {
                self.chosen[id.0] = None;
            }
            if self.chosen[id.0].is_none() {
                if !proj_ready {
                    match self.proj.as_mut() {
                        Some(p) => p.reset_for(view),
                        None => self.proj = Some(Projection::from_view(view)),
                    }
                    proj_ready = true;
                }
                let proj = self.proj.as_mut().expect("initialized above");
                let job = view.job(id);
                let st = &view.state(id);
                let mut best: Option<(Target, mmsec_sim::Time)> = None;
                for k in spec.clouds() {
                    if !view.cloud_available(k) {
                        continue;
                    }
                    let c = proj.completion(job, st, Target::Cloud(k), spec, view.now);
                    if best.map_or(true, |(_, bc)| c < bc) {
                        best = Some((Target::Cloud(k), c));
                    }
                }
                // Every cloud down: leave the job unplaced this round.
                let Some((target, _)) = best else { continue };
                proj.place(job, st, target, spec, view.now);
                self.chosen[id.0] = Some(target);
            }
            out.push(id, self.chosen[id.0].expect("placed above"));
        }
    }
}

/// Random sticky placement with FIFO priority — the weakest sensible
/// baseline; fully deterministic given its seed.
#[derive(Clone, Debug)]
pub struct RandomSticky {
    rng: SplitMix64,
    chosen: Vec<Option<Target>>,
}

impl RandomSticky {
    /// Creates the policy with a seed.
    pub fn new(seed: u64) -> Self {
        RandomSticky {
            rng: SplitMix64::new(seed),
            chosen: Vec::new(),
        }
    }
}

impl OnlineScheduler for RandomSticky {
    fn name(&self) -> String {
        "random".into()
    }

    fn cadence(&self) -> DecisionCadence {
        // Draws happen only for newly released or fault-displaced jobs —
        // both epoch bumps — so the RNG stream (and thus the schedule) is
        // identical with gating on or off.
        DecisionCadence::OnEpochChange
    }

    fn on_start(&mut self, instance: &Instance) {
        self.chosen = vec![None; instance.num_jobs()];
    }

    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        // Streaming sessions admit jobs after `on_start`.
        if self.chosen.len() < view.jobs.len() {
            self.chosen.resize(view.jobs.len(), None);
        }
        let spec = view.spec();
        // (release, id) iteration order = FIFO priority; it also fixes the
        // order in which new jobs draw from the RNG, keeping the policy
        // deterministic per seed.
        for id in view.pending_jobs() {
            let origin = view.job(id).origin;
            // Fault injection: re-draw when the sticky unit went down.
            if self.chosen[id.0].is_some_and(|t| !view.target_available(origin, t)) {
                self.chosen[id.0] = None;
            }
            if self.chosen[id.0].is_none() {
                // Draw among the units currently up. With no fault plan
                // every unit is up, so the option list — and thus the RNG
                // stream — is identical to the fault-free policy.
                let mut options: Vec<Target> = Vec::with_capacity(1 + spec.num_cloud());
                if view.edge_available(origin) {
                    options.push(Target::Edge);
                }
                for k in spec.clouds() {
                    if view.cloud_available(k) {
                        options.push(Target::Cloud(k));
                    }
                }
                // Everything down: leave the job unplaced this round
                // (without consuming a random draw).
                if options.is_empty() {
                    continue;
                }
                let pick = (self.rng.next_u64() as usize) % options.len();
                self.chosen[id.0] = Some(options[pick]);
            }
            out.push(id, self.chosen[id.0].expect("placed above"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::{validate, EdgeId, Instance, Job, PlatformSpec, Simulation};

    fn instance() -> Instance {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5, 0.1])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.5, 0.5),
            Job::new(EdgeId(1), 0.0, 4.0, 0.2, 0.2),
            Job::new(EdgeId(0), 1.0, 1.0, 3.0, 3.0),
            Job::new(EdgeId(1), 2.0, 3.0, 0.1, 0.1),
        ];
        Instance::new(spec, jobs).unwrap()
    }

    #[test]
    fn fcfs_completes_and_validates() {
        let inst = instance();
        let out = Simulation::of(&inst)
            .policy(&mut Fcfs::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        assert!(out.schedule.all_finished());
        // FCFS never re-executes (sticky placement).
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn cloud_only_uses_only_cloud() {
        let inst = instance();
        let out = Simulation::of(&inst)
            .policy(&mut CloudOnly::new())
            .run()
            .unwrap();
        assert!(validate(&inst, &out.schedule).is_ok());
        for a in &out.schedule.alloc {
            assert!(matches!(a, Some(Target::Cloud(_))));
        }
    }

    #[test]
    #[should_panic(expected = "needs a cloud")]
    fn cloud_only_requires_cloud() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)]).unwrap();
        let _ = Simulation::of(&inst).policy(&mut CloudOnly::new()).run();
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let inst = instance();
        let a = Simulation::of(&inst)
            .policy(&mut RandomSticky::new(7))
            .run()
            .unwrap();
        let b = Simulation::of(&inst)
            .policy(&mut RandomSticky::new(7))
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert!(validate(&inst, &a.schedule).is_ok());
    }

    #[test]
    fn fcfs_spreads_simultaneous_burst() {
        // Four cloud-friendly jobs at t=0, two clouds: shared projection
        // must not pile them all on cloud 0.
        let spec = PlatformSpec::builder()
            .edges(vec![0.05; 4])
            .cloud_pool(2)
            .build();
        let jobs: Vec<_> = (0..4)
            .map(|i| Job::new(EdgeId(i), 0.0, 4.0, 0.5, 0.5))
            .collect();
        let inst = Instance::new(spec, jobs).unwrap();
        let out = Simulation::of(&inst)
            .policy(&mut Fcfs::new())
            .run()
            .unwrap();
        let cloud0 = out
            .schedule
            .alloc
            .iter()
            .filter(|a| **a == Some(Target::Cloud(mmsec_platform::CloudId(0))))
            .count();
        assert_eq!(cloud0, 2);
    }
}
