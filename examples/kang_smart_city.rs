//! A "smart-city" scenario on the Kang platform (paper §VI-A, after Kang
//! et al. [24]): mobile devices with GPU/CPU compute and Wi-Fi/LTE/3G
//! uplinks stream DNN-style jobs, optionally offloading to a 10-processor
//! cloud. Compares the four paper heuristics plus the extra baselines.
//!
//! Run with: `cargo run --release --example kang_smart_city`

use mmsec_core::PolicyKind;
use mmsec_platform::{validate, Simulation, StretchReport, Target};
use mmsec_workload::KangConfig;

fn main() {
    let cfg = KangConfig {
        num_edge: 20,
        num_cloud: 10,
        n: 400,
        load: 0.05,
        ..KangConfig::default()
    };
    let instance = cfg.generate(2021);
    println!(
        "Kang platform: {} edge devices (GPU/CPU × WiFi/LTE/3G), {} cloud processors, {} jobs\n",
        cfg.num_edge, cfg.num_cloud, cfg.n
    );

    println!("policy      max-stretch  mean-stretch  offloaded  restarts  sched-time");
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(7);
        let out = Simulation::of(&instance)
            .policy(policy.as_mut())
            .run()
            .expect("completes");
        validate(&instance, &out.schedule).expect("valid schedule");
        let report = StretchReport::new(&instance, &out.schedule);
        let offloaded = out
            .schedule
            .alloc
            .iter()
            .filter(|a| matches!(a, Some(Target::Cloud(_))))
            .count();
        println!(
            "{:<11} {:>11.3} {:>13.3} {:>7}/{:<3} {:>8} {:>10.1?}",
            kind.name(),
            report.max_stretch,
            report.mean_stretch,
            offloaded,
            instance.num_jobs(),
            out.stats.restarts,
            out.stats.decide_time,
        );
    }

    println!(
        "\nReading: with 3G uplinks averaging 870s versus ~37s of local compute, \
         only jobs from well-connected devices are worth offloading — exactly the \
         trade-off the heuristics navigate."
    );
}
