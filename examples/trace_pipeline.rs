//! The schedule-artifact pipeline: simulate → export CSV → re-import →
//! re-validate → render SVG. Archived schedules can be audited long after
//! the run that produced them.
//!
//! Run with: `cargo run --example trace_pipeline`

use mmsec_core::SsfEdf;
use mmsec_platform::export::{schedule_from_csv, schedule_to_csv};
use mmsec_platform::svg::{schedule_to_svg, SvgOptions};
use mmsec_platform::{validate, Simulation, StretchReport};
use mmsec_workload::RandomCcrConfig;

fn main() {
    let cfg = RandomCcrConfig {
        n: 25,
        ccr: 1.0,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    };
    let instance = cfg.generate(7);

    // 1. Simulate.
    let out = Simulation::of(&instance)
        .policy(&mut SsfEdf::new())
        .run()
        .expect("completes");
    validate(&instance, &out.schedule).expect("valid");
    let report = StretchReport::new(&instance, &out.schedule);
    println!(
        "simulated {} jobs with SSF-EDF: max stretch {:.3}",
        instance.num_jobs(),
        report.max_stretch
    );

    // 2. Export the activity trace.
    let csv = schedule_to_csv(&instance, &out.schedule);
    println!("exported {} activity rows", csv.lines().count() - 1);

    // 3. Re-import and re-validate — the archived trace is self-checking.
    let rebuilt = schedule_from_csv(&instance, &csv).expect("imports");
    validate(&instance, &rebuilt).expect("re-imported schedule is valid");
    let report2 = StretchReport::new(&instance, &rebuilt);
    assert_eq!(report.max_stretch, report2.max_stretch);
    println!("re-imported schedule validates, identical max stretch");

    // 4. Render to SVG next to the working directory.
    let svg = schedule_to_svg(&instance, &out.schedule, SvgOptions::default());
    let path = std::env::temp_dir().join("mmsec_trace_pipeline.svg");
    std::fs::write(&path, &svg).expect("write svg");
    println!("rendered {} bytes of SVG to {}", svg.len(), path.display());

    // 5. Keep the instance alongside (the text format round-trips too).
    let inst_path = std::env::temp_dir().join("mmsec_trace_pipeline.instance.txt");
    std::fs::write(&inst_path, instance.to_text()).expect("write instance");
    println!("archived the instance to {}", inst_path.display());
}
