//! The paper's Figure 1 worked example, reconstructed and verified.
//!
//! One edge unit at speed 1/3, one cloud processor, six jobs. The paper's
//! optimal schedule runs J1, J4, J6 on the edge and sends J2, J3, J5 to
//! the cloud; we rebuild it interval by interval, validate every §III-B
//! constraint, confirm the optimal max-stretch of 3/2, and then compare
//! what each online heuristic achieves on the same instance.
//!
//! Run with: `cargo run --example figure1`

use mmsec_core::PolicyKind;
use mmsec_platform::schedule::TraceBuilder;
use mmsec_platform::{
    figure1_instance, validate, CloudId, JobId, Phase, Simulation, StretchReport, Target,
};
use mmsec_sim::{Interval, Time};

/// Rebuilds the optimal schedule of Figure 1.
fn optimal_schedule() -> mmsec_platform::Schedule {
    let mut tb = TraceBuilder::new(6);
    let cloud = Target::Cloud(CloudId(0));
    let iv = Interval::from_secs;

    // Edge CPU (speed 1/3): J1 [0,3); J4 [5,6) ∪ [7,10) (preempted by J6);
    // J6 [6,7).
    tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 3.0));
    tb.record(JobId(3), Phase::Compute, Target::Edge, iv(5.0, 6.0));
    tb.record(JobId(5), Phase::Compute, Target::Edge, iv(6.0, 7.0));
    tb.record(JobId(3), Phase::Compute, Target::Edge, iv(7.0, 10.0));

    // Cloud: J2 up [0,2), exec [2,6), down [6,8).
    tb.record(JobId(1), Phase::Uplink, cloud, iv(0.0, 2.0));
    tb.record(JobId(1), Phase::Compute, cloud, iv(2.0, 6.0));
    tb.record(JobId(1), Phase::Downlink, cloud, iv(6.0, 8.0));
    // J3 up [3,4), exec [6,8), down [8,9).
    tb.record(JobId(2), Phase::Uplink, cloud, iv(3.0, 4.0));
    tb.record(JobId(2), Phase::Compute, cloud, iv(6.0, 8.0));
    tb.record(JobId(2), Phase::Downlink, cloud, iv(8.0, 9.0));
    // J5 up [6,7), exec [8,10), down [10,11). (At t = 6.5 the platform
    // computes on the edge AND the cloud while an uplink and a downlink
    // are in flight — the paper's illustration of full overlap.)
    tb.record(JobId(4), Phase::Uplink, cloud, iv(6.0, 7.0));
    tb.record(JobId(4), Phase::Compute, cloud, iv(8.0, 10.0));
    tb.record(JobId(4), Phase::Downlink, cloud, iv(10.0, 11.0));

    tb.complete(JobId(0), Time::new(3.0));
    tb.complete(JobId(1), Time::new(8.0));
    tb.complete(JobId(2), Time::new(9.0));
    tb.complete(JobId(3), Time::new(10.0));
    tb.complete(JobId(4), Time::new(11.0));
    tb.complete(JobId(5), Time::new(7.0));
    tb.finish()
}

fn main() {
    let instance = figure1_instance();
    println!("Figure 1 instance (edge speed 1/3, one cloud processor):\n");
    println!("job  release  work   up   dn   t^e    t^c    min");
    for (id, job) in instance.iter_jobs() {
        println!(
            "{:<4} {:>7.2} {:>5.2} {:>4.1} {:>4.1} {:>6.2} {:>6.2} {:>6.2}",
            id.to_string(),
            job.release.seconds(),
            job.work,
            job.up,
            job.dn,
            job.edge_time(&instance.spec),
            job.best_cloud_time(&instance.spec),
            job.min_time(&instance.spec),
        );
    }

    let schedule = optimal_schedule();
    validate(&instance, &schedule).expect("the reconstructed schedule is valid");
    let report = StretchReport::new(&instance, &schedule);
    println!("\nReconstructed optimal schedule:");
    println!("per-job stretches: {:?}", report.stretches);
    println!("optimal max-stretch = {} (= 3/2)", report.max_stretch);
    assert!((report.max_stretch - 1.5).abs() < 1e-9);

    println!("\nOnline heuristics on the same instance:");
    for kind in PolicyKind::PAPER {
        let mut policy = kind.build(0);
        let out = Simulation::of(&instance)
            .policy(policy.as_mut())
            .run()
            .expect("completes");
        validate(&instance, &out.schedule).expect("valid");
        let r = StretchReport::new(&instance, &out.schedule);
        println!("  {:<10} max-stretch = {:.4}", kind.name(), r.max_stretch);
    }
    println!("\n(The online heuristics cannot beat 3/2: they do not know the future.)");
}
