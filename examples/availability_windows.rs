//! The paper's §VII future-work extension in action: cloud processors
//! that are periodically requisitioned by other applications. We schedule
//! the same workload with and without unavailability windows and draw the
//! Gantt charts.
//!
//! Run with: `cargo run --example availability_windows`

use mmsec_core::SsfEdf;
use mmsec_platform::{
    gantt, validate, CloudId, EdgeId, GanttOptions, Instance, Job, PlatformSpec, Simulation,
    StretchReport,
};
use mmsec_sim::Interval;

fn jobs() -> Vec<Job> {
    vec![
        Job::new(EdgeId(0), 0.0, 4.0, 0.5, 0.5),
        Job::new(EdgeId(0), 1.0, 3.0, 0.5, 0.5),
        Job::new(EdgeId(1), 2.0, 5.0, 0.5, 0.5),
        Job::new(EdgeId(1), 6.0, 2.0, 0.5, 0.5),
        Job::new(EdgeId(0), 8.0, 1.0, 0.5, 0.5),
    ]
}

fn main() {
    let edge_speeds = vec![0.25, 0.25];

    // Baseline: two always-available cloud processors.
    let spec = PlatformSpec::builder()
        .edges(edge_speeds.clone())
        .cloud_pool(2)
        .build();
    let inst = Instance::new(spec, jobs()).unwrap();
    let out = Simulation::of(&inst)
        .policy(&mut SsfEdf::new())
        .run()
        .unwrap();
    validate(&inst, &out.schedule).unwrap();
    let base = StretchReport::new(&inst, &out.schedule);
    println!("=== always-available cloud ===");
    println!("max stretch {:.3}\n", base.max_stretch);
    println!("{}", gantt(&inst, &out.schedule, GanttOptions::default()));

    // Extension: cloud 1 is requisitioned during [3, 8) and [12, 16).
    let spec = PlatformSpec::builder()
        .edges(edge_speeds)
        .cloud_pool(2)
        .build()
        .with_cloud_unavailability(
            CloudId(1),
            &[
                Interval::from_secs(3.0, 8.0),
                Interval::from_secs(12.0, 16.0),
            ],
        );
    let inst = Instance::new(spec, jobs()).unwrap();
    let out = Simulation::of(&inst)
        .policy(&mut SsfEdf::new())
        .run()
        .unwrap();
    validate(&inst, &out.schedule).unwrap();
    let constrained = StretchReport::new(&inst, &out.schedule);
    println!("=== cloud 1 requisitioned during [3,8) and [12,16) ===");
    println!("max stretch {:.3}\n", constrained.max_stretch);
    println!("{}", gantt(&inst, &out.schedule, GanttOptions::default()));

    println!(
        "degradation: {:.3} → {:.3} ({:+.1}%)",
        base.max_stretch,
        constrained.max_stretch,
        (constrained.max_stretch / base.max_stretch - 1.0) * 100.0
    );
}
