//! Quickstart: build a small edge-cloud instance, schedule it with the
//! paper's best heuristic (SSF-EDF), validate the schedule, and print a
//! per-job report.
//!
//! Run with: `cargo run --example quickstart`

use mmsec_core::SsfEdf;
use mmsec_platform::{
    validate, EdgeId, Instance, Job, JobId, PlatformSpec, Simulation, StretchReport,
};

fn main() {
    // A toy platform: two edge units (a fast one at speed 0.5 and a slow
    // one at 0.2) coupled to two unit-speed cloud processors.
    let spec = PlatformSpec::builder()
        .edges(vec![0.5, 0.2])
        .cloud_pool(2)
        .build();

    // Six jobs: (origin, release, work, uplink, downlink).
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 2.0, 0.5, 0.5), // cloud-friendly
        Job::new(EdgeId(0), 0.0, 4.0, 6.0, 6.0), // heavy comms: stay local
        Job::new(EdgeId(1), 1.0, 3.0, 0.2, 0.2), // slow edge: offload
        Job::new(EdgeId(1), 2.0, 0.5, 0.1, 0.1),
        Job::new(EdgeId(0), 3.0, 1.0, 0.3, 0.3),
        Job::new(EdgeId(1), 3.5, 2.5, 0.4, 0.4),
    ];
    let instance = Instance::new(spec, jobs).expect("valid instance");

    // Schedule online with SSF-EDF (§V-D).
    let mut policy = SsfEdf::new();
    let out = Simulation::of(&instance)
        .policy(&mut policy)
        .run()
        .expect("simulation completes");

    // Check every constraint of §III-B before trusting the numbers.
    validate(&instance, &out.schedule).expect("schedule is valid");

    let report = StretchReport::new(&instance, &out.schedule);
    println!("scheduled {} jobs with SSF-EDF\n", instance.num_jobs());
    println!("job  placed-on  release  completion  response  stretch");
    for (id, job) in instance.iter_jobs() {
        let c = out.schedule.completion[id.0].expect("finished");
        println!(
            "{:<4} {:<10} {:>7.2} {:>11.2} {:>9.2} {:>8.3}",
            id.to_string(),
            out.schedule.alloc[id.0].expect("allocated").to_string(),
            job.release.seconds(),
            c.seconds(),
            report.responses[id.0],
            report.stretches[id.0],
        );
    }
    println!(
        "\nmax stretch = {:.3} (achieved by {})",
        report.max_stretch,
        report
            .argmax
            .map_or("-".to_string(), |j: JobId| j.to_string()),
    );
    println!("mean stretch = {:.3}", report.mean_stretch);
    println!(
        "events = {}, scheduling time = {:?}",
        out.stats.events, out.stats.decide_time
    );
}
