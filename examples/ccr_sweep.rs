//! A miniature of the paper's Figure 2(a): sweep the communication-to-
//! computation ratio and watch the cloud stop paying off.
//!
//! Run with: `cargo run --release --example ccr_sweep`

use mmsec_bench::experiments::{fig2a, CCR_SWEEP};
use mmsec_bench::Scale;

fn main() {
    let scale = Scale {
        reps: 5,
        n_random: 200,
        kang_ns: vec![],
        threads: mmsec_analysis::default_threads(),
        validate: true,
    };
    println!(
        "Sweeping CCR over {CCR_SWEEP:?} on the paper's random platform\n\
         (20 cloud, 10 edge @ 0.1, 10 edge @ 0.5; n = {}, {} reps per point)\n",
        scale.n_random, scale.reps
    );
    let fig = fig2a(&scale, 42);
    println!("{}", fig.to_markdown());
    println!(
        "For the paper-scale version (n = 4000, 1000 reps), run:\n  \
         cargo run --release -p mmsec-apps --bin repro -- fig2a --scale full"
    );
}
