//! The offline side of the paper (§IV): exact solvers and NP-hardness
//! reductions in action.
//!
//! Run with: `cargo run --example offline_optimal`

use mmsec_core::PolicyKind;
use mmsec_offline::brute::optimal_mmsh;
use mmsec_offline::reductions::{has_two_partition_eq, mmsh_to_mmseco, two_partition_eq_to_mmsh};
use mmsec_offline::single_machine::{optimal_max_stretch, OfflineJob};
use mmsec_offline::{optimal_order_based, spt_max_stretch, MmshInstance};
use mmsec_platform::{Simulation, StretchReport};

fn main() {
    // 1. Lemma 2: SPT order on one machine.
    let works = [1.0, 10.0];
    println!("Lemma 2 — one processor, jobs {works:?}:");
    println!(
        "  shortest-first max-stretch = {:.3} (the paper's 1.1 vs 11 example)",
        spt_max_stretch(&works)
    );

    // 2. Exact MMSH: the problem proven NP-complete by Theorem 1.
    let inst = MmshInstance::new(2, vec![4.0, 2.5, 1.0, 3.0, 2.0, 1.5]);
    let opt = optimal_mmsh(&inst);
    println!(
        "\nExact MMSH (2 processors, {} jobs): optimal max-stretch = {:.4}, assignment {:?}",
        inst.num_jobs(),
        opt.max_stretch,
        opt.assign
    );

    // 3. Theorem 1 in action: a 2-PARTITION-EQ instance and its MMSH image.
    let a = [1u64, 2, 3, 4];
    let (reduced, threshold) = two_partition_eq_to_mmsh(&a);
    let reduced_opt = optimal_mmsh(&reduced);
    println!(
        "\nTheorem 1 — 2-PARTITION-EQ {a:?}: partition exists = {}, \
         MMSH optimum {:.4} vs threshold {:.4} → decision {}",
        has_two_partition_eq(&a),
        reduced_opt.max_stretch,
        threshold,
        reduced_opt.max_stretch <= threshold + 1e-9
    );

    // 4. Theorem 3: the same MMSH instance as an edge-cloud instance, and
    //    what the online heuristics achieve against the offline optimum.
    let eco = mmsh_to_mmseco(&inst);
    let oracle = optimal_order_based(&eco);
    println!(
        "\nTheorem 3 embedding — offline optimum {:.4}; online heuristics:",
        oracle.max_stretch
    );
    for kind in PolicyKind::PAPER {
        let mut policy = kind.build(0);
        let out = Simulation::of(&eco)
            .policy(policy.as_mut())
            .run()
            .expect("completes");
        let r = StretchReport::new(&eco, &out.schedule);
        println!(
            "  {:<10} {:.4}  (x{:.3} of optimal)",
            kind.name(),
            r.max_stretch,
            r.max_stretch / oracle.max_stretch
        );
    }

    // 5. Single-machine offline optimum with release dates (the engine
    //    behind Edge-Only and SSF-EDF's binary search).
    let jobs = [
        OfflineJob::plain(0.0, 10.0),
        OfflineJob::plain(1.0, 1.0),
        OfflineJob::plain(4.0, 2.0),
    ];
    println!(
        "\nSingle machine with releases: optimal max-stretch = {:.4}",
        optimal_max_stretch(&jobs, 1e-6)
    );
}
