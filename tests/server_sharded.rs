//! Integration tests for the sharded multi-session server
//! (`mmsec_apps::server`): record framing, accounting, overload
//! shedding, the socket listener end to end, and the bit-identity
//! property — each tenant's record stream on a sharded server equals the
//! same traffic on an independent single-session serve.

use mmsec_apps::ndjson::{parse_object, Value};
use mmsec_apps::serve::{serve, ServeConfig};
use mmsec_apps::server::{run_sharded, ServerConfig, ServerSummary};
use mmsec_core::PolicyKind;
use mmsec_platform::{Instance, PlatformSpec};
use proptest::prelude::*;
use std::io::Cursor;

fn platform() -> Instance {
    let spec = PlatformSpec::builder()
        .edges(vec![0.5, 0.8])
        .cloud_pool(2)
        .build();
    Instance::new(spec, vec![]).unwrap()
}

fn server_cfg(shards: usize) -> ServerConfig {
    ServerConfig {
        shards,
        // Wall-clock server heartbeats are nondeterministic: keep them
        // out of in-memory tests.
        heartbeat_ms: 0,
        ..ServerConfig::default()
    }
}

/// Runs one in-memory sharded connection and returns (raw output lines,
/// summary).
fn run_lines(inst: &Instance, cfg: &ServerConfig, input: &str) -> (Vec<String>, ServerSummary) {
    let mut out = Vec::new();
    let summary = run_sharded(inst, cfg, Cursor::new(input.to_string()), &mut out).unwrap();
    let lines = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    (lines, summary)
}

fn kind_of(rec: &[(String, Value)]) -> &str {
    rec.iter()
        .find(|(k, _)| k == "type")
        .and_then(|(_, v)| v.as_str())
        .expect("every record has a type")
}

fn txt<'a>(rec: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    rec.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
}

fn num(rec: &[(String, Value)], key: &str) -> f64 {
    rec.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_num())
        .unwrap_or_else(|| panic!("missing numeric field {key}"))
}

#[test]
fn two_tenants_get_tagged_streams_and_a_server_summary() {
    let input = r#"
{"tenant": "a", "origin": 0, "release": 1.0, "work": 2.0}
{"tenant": "b", "origin": 1, "release": 1.0, "work": 1.0}
{"tenant": "a", "origin": 0, "release": 2.0, "work": 1.0}
"#;
    let (lines, summary) = run_lines(&platform(), &server_cfg(4), input);
    let recs: Vec<_> = lines.iter().map(|l| parse_object(l).unwrap()).collect();

    assert_eq!(kind_of(&recs[0]), "server-hello");
    assert_eq!(kind_of(recs.last().unwrap()), "server-summary");
    // Every record between the server frame is tenant-tagged.
    for rec in &recs[1..recs.len() - 1] {
        let t = txt(rec, "tenant").expect("tenant tag");
        assert!(t == "a" || t == "b", "unexpected tenant {t}");
    }
    // Each tenant got its own hello and summary.
    for t in ["a", "b"] {
        assert_eq!(
            recs.iter()
                .filter(|r| kind_of(r) == "hello" && txt(r, "tenant") == Some(t))
                .count(),
            1
        );
        assert_eq!(
            recs.iter()
                .filter(|r| kind_of(r) == "summary" && txt(r, "tenant") == Some(t))
                .count(),
            1
        );
    }
    assert_eq!(summary.lines, 3);
    assert_eq!(summary.admitted, 3);
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.tenants, 2);
    assert_eq!(summary.shed + summary.rejected, 0);
    let server_summary = recs.last().unwrap();
    assert_eq!(num(server_summary, "admitted"), 3.0);
    assert_eq!(num(server_summary, "tenants"), 2.0);
}

#[test]
fn untagged_lines_route_to_the_default_tenant() {
    let input = r#"{"origin": 0, "release": 0.5, "work": 1.0}"#;
    let (lines, summary) = run_lines(&platform(), &server_cfg(2), input);
    let recs: Vec<_> = lines.iter().map(|l| parse_object(l).unwrap()).collect();
    assert!(recs
        .iter()
        .any(|r| kind_of(r) == "admit" && txt(r, "tenant") == Some("default")));
    assert_eq!(summary.admitted, 1);
    assert_eq!(summary.tenants, 1);
}

#[test]
fn spec_record_creates_the_tenant_platform() {
    let input = r#"
{"tenant": "big", "type": "spec", "edges": 3, "clouds": 2, "cloud-speed": 2.0}
{"tenant": "big", "origin": 2, "release": 0.0, "work": 1.0}
{"tenant": "bad", "type": "spec", "edges": 0}
"#;
    let (lines, summary) = run_lines(&platform(), &server_cfg(2), input);
    let recs: Vec<_> = lines.iter().map(|l| parse_object(l).unwrap()).collect();

    let ok: Vec<_> = recs.iter().filter(|r| kind_of(r) == "spec-ok").collect();
    assert_eq!(ok.len(), 1);
    assert_eq!(txt(ok[0], "tenant"), Some("big"));
    assert_eq!(num(ok[0], "edges"), 3.0);
    assert_eq!(num(ok[0], "clouds"), 2.0);
    // The tenant's hello advertises the spec'd platform, not the default.
    let hello = recs
        .iter()
        .find(|r| kind_of(r) == "hello" && txt(r, "tenant") == Some("big"))
        .unwrap();
    assert_eq!(num(hello, "edges"), 3.0);
    // origin 2 only exists on the spec'd platform: it must admit.
    assert!(recs
        .iter()
        .any(|r| kind_of(r) == "admit" && txt(r, "tenant") == Some("big")));
    // The bad spec is rejected and creates no lane.
    assert!(recs
        .iter()
        .any(|r| kind_of(r) == "reject" && txt(r, "tenant") == Some("bad")));
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.tenants, 1);
}

#[test]
fn global_pending_gate_sheds_at_the_router() {
    // A saturated gate (cap 0 is "always at capacity" — the general case
    // depends on worker timing, this one is deterministic) sheds every
    // job line at the router with a typed reason; control records such
    // as platform mutations still go through.
    let input = r#"
{"tenant": "a", "origin": 0, "release": 0.0, "work": 1000.0}
{"tenant": "a", "type": "platform", "op": "add-cloud", "speed": 2.0}
{"tenant": "b", "origin": 0, "release": 0.0, "work": 1.0}
"#;
    let cfg = ServerConfig {
        global_pending: Some(0),
        ..server_cfg(2)
    };
    let (lines, summary) = run_lines(&platform(), &cfg, input);
    let recs: Vec<_> = lines.iter().map(|l| parse_object(l).unwrap()).collect();
    let sheds: Vec<_> = recs
        .iter()
        .filter(|r| kind_of(r) == "shed" && txt(r, "reason") == Some("global-overload"))
        .collect();
    assert_eq!(sheds.len(), 2);
    assert!(recs.iter().any(|r| kind_of(r) == "platform-ok"));
    assert_eq!(summary.admitted, 0);
    assert_eq!(summary.shed, 2);
    // Accounting closes: every input line is admitted, shed, or rejected
    // (the applied mutation is none of those, so count it out).
    assert_eq!(
        summary.admitted + summary.shed + summary.rejected,
        summary.lines - 1
    );
}

#[test]
fn single_shard_single_tenant_matches_plain_serve_modulo_tag() {
    let input = r#"
{"origin": 0, "release": 1.0, "work": 2.0, "up": 0.5, "dn": 0.25}
{"origin": 1, "release": 2.0, "work": 1.0}
not json at all
{"type": "platform", "op": "add-cloud", "speed": 2.0}
{"origin": 0, "release": 25.0, "work": 1.0}
"#;
    let inst = platform();
    let (lines, _) = run_lines(&inst, &server_cfg(1), input);
    let tagged: Vec<String> = lines
        .iter()
        .filter(|l| l.contains("\"tenant\":\"default\""))
        .map(|l| l.replacen(",\"tenant\":\"default\"", "", 1))
        .collect();

    let mut plain = Vec::new();
    serve(
        &inst,
        &ServeConfig::default(),
        Cursor::new(input.to_string()),
        &mut plain,
        None,
    )
    .unwrap();
    let plain: Vec<&str> = std::str::from_utf8(&plain).unwrap().lines().collect();
    assert_eq!(tagged, plain, "tagged stream is not byte-identical");
}

/// One tenant's scripted traffic for the bit-identity property.
#[derive(Debug, Clone)]
struct TenantScript {
    name: String,
    lines: Vec<String>,
}

fn arb_job_line() -> impl Strategy<Value = (usize, f64, f64)> {
    (0usize..2, 0u32..40, 1u32..30)
        .prop_map(|(origin, rel, work)| (origin, f64::from(rel) / 4.0, f64::from(work) / 8.0))
}

fn arb_scripts() -> impl Strategy<Value = Vec<TenantScript>> {
    (
        1usize..5,
        prop::collection::vec(prop::collection::vec(arb_job_line(), 1..7), 4usize),
    )
        .prop_map(|(k, all)| {
            all.into_iter()
                .take(k)
                .enumerate()
                .map(|(i, jobs)| {
                    let name = format!("t{i}");
                    let mut release = 0.0f64;
                    let lines = jobs
                        .into_iter()
                        .map(|(origin, gap, work)| {
                            // Releases are non-decreasing within a tenant,
                            // as a real producer's would be.
                            release += gap;
                            format!(
                                "{{\"tenant\": \"{name}\", \"origin\": {origin}, \
                                 \"release\": {release}, \"work\": {work}}}"
                            )
                        })
                        .collect();
                    TenantScript { name, lines }
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// K tenants interleaved on one sharded server produce per-tenant
    /// record streams bit-identical to K independent single-session
    /// serve runs — including under `--max-pending` shedding.
    #[test]
    fn sharded_streams_match_independent_sessions(
        scripts in arb_scripts(),
        shards in 1usize..5,
        max_pending_raw in 0usize..3,
        interleave_seed in any::<u64>(),
    ) {
        let inst = platform();
        let serve_cfg = ServeConfig {
            policy: PolicyKind::SsfEdf,
            max_pending: (max_pending_raw > 0).then_some(max_pending_raw),
            stats_every: Some(2),
            ..ServeConfig::default()
        };

        // Deterministically interleave the tenants' scripts.
        let mut cursors: Vec<usize> = vec![0; scripts.len()];
        let mut interleaved = String::new();
        let mut rng = interleave_seed;
        loop {
            let live: Vec<usize> = cursors
                .iter()
                .enumerate()
                .filter(|(i, &c)| c < scripts[*i].lines.len())
                .map(|(i, _)| i)
                .collect();
            if live.is_empty() {
                break;
            }
            // xorshift64 — cheap, deterministic tenant picking.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let pick = live[(rng % live.len() as u64) as usize];
            interleaved.push_str(&scripts[pick].lines[cursors[pick]]);
            interleaved.push('\n');
            cursors[pick] += 1;
        }

        let cfg = ServerConfig {
            serve: ServeConfig { ..clone_cfg(&serve_cfg) },
            shards,
            heartbeat_ms: 0,
            ..ServerConfig::default()
        };
        let mut out = Vec::new();
        run_sharded(&inst, &cfg, Cursor::new(interleaved), &mut out).unwrap();
        let merged = String::from_utf8(out).unwrap();

        for script in &scripts {
            let tag = format!(",\"tenant\":\"{}\"", script.name);
            let got: Vec<String> = merged
                .lines()
                .filter(|l| l.contains(tag.as_str()))
                .map(|l| l.replacen(tag.as_str(), "", 1))
                .collect();

            let mut solo = Vec::new();
            serve(
                &inst,
                &clone_cfg(&serve_cfg),
                Cursor::new(script.lines.join("\n")),
                &mut solo,
                None,
            )
            .unwrap();
            let want: Vec<&str> = std::str::from_utf8(&solo).unwrap().lines().collect();
            prop_assert_eq!(
                &got, &want,
                "tenant {} diverged from its solo session", script.name
            );
        }
    }
}

/// `ServeConfig` carries no `Clone` derive (it holds engine options by
/// value); rebuild the fields the tests vary.
fn clone_cfg(cfg: &ServeConfig) -> ServeConfig {
    ServeConfig {
        policy: cfg.policy,
        seed: cfg.seed,
        engine: cfg.engine,
        heartbeat: cfg.heartbeat,
        max_pending: cfg.max_pending,
        speedup: cfg.speedup,
        stats_every: cfg.stats_every,
    }
}
