//! Allocation discipline of the steady-state hot paths, pinned by a
//! counting global allocator.
//!
//! Two regimes must be allocation-free once their reusable storage is
//! warm:
//!
//! 1. **Engine stepping**: a session advancing through capped
//!    [`Session::run_until`] steps — decide, grant, accrue, trace — with
//!    no admissions or completions in flight reuses every buffer
//!    (directive buffer, activation lists, projection/round state,
//!    contiguous trace-segment merging) and performs zero allocations
//!    per step.
//! 2. **NDJSON record layer**: parsing a submission line into a recycled
//!    [`ObjBuf`] and serializing a response through a reused
//!    [`ObjWriter`] allocates nothing per record — the `mmsec serve`
//!    admit path's parse/emit cost is bounded by the engine, not the
//!    protocol layer.
//!
//! Everything runs inside ONE `#[test]` so the counter can't be
//! contaminated by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mmsec_apps::ndjson::{parse_object_into, ObjBuf, ObjWriter};
use mmsec_core::PolicyKind;
use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec, SessionStatus, Simulation};
use mmsec_sim::Time;

/// [`System`] with a per-thread allocation-event counter (allocs,
/// reallocs, and zeroed allocs all count; frees don't — the tests bound
/// acquisition, not peak usage). Per-thread so a libtest harness thread
/// allocating concurrently cannot contaminate the measurement; the
/// `const` TLS initializer keeps the counter access itself
/// allocation-free.
struct CountingAlloc;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOC_EVENTS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocation events this thread performed
/// in it.
fn alloc_events(f: impl FnOnce()) -> u64 {
    let before = ALLOC_EVENTS.with(Cell::get);
    f();
    ALLOC_EVENTS.with(Cell::get) - before
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    engine_capped_steps();
    ndjson_record_layer();
}

/// Regime 1: capped engine steps in a warm session.
fn engine_capped_steps() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    // One enormous compute-only job: every capped step extends the same
    // contiguous edge-compute segment, decides over the same single
    // pending job, and completes nothing.
    let jobs = vec![Job::new(EdgeId(0), 0.0, 1e9, 0.0, 0.0)];
    let inst = Instance::new(spec, jobs).expect("valid instance");
    let mut policy = PolicyKind::Srpt.build(1);
    let mut session = Simulation::of(&inst).policy(policy.as_mut()).session();

    // Warm-up: first steps grow the reusable buffers to their steady
    // size (directive buffer, activation lists, policy round state).
    let mut t = 0.0;
    for _ in 0..8 {
        t += 0.25;
        session.run_until(Time::new(t)).expect("warm-up advance");
    }

    let events = alloc_events(|| {
        for _ in 0..256 {
            t += 0.25;
            let status = session.run_until(Time::new(t)).expect("steady advance");
            assert_eq!(status, SessionStatus::Reached);
        }
    });
    assert_eq!(
        events, 0,
        "steady-state engine stepping must be allocation-free, \
         saw {events} allocation event(s) over 256 capped steps"
    );
}

/// Regime 2: the serve protocol's parse/serialize layer.
fn ndjson_record_layer() {
    let line = r#"{"origin": 3, "release": 17.25, "work": 2.5, "up": 0.5, "dn": 0.125}"#;
    let mut fields = ObjBuf::new();
    let mut w = ObjWriter::typed("admit");

    // Warm-up sizes the field slots and the writer buffer.
    parse_object_into(line, &mut fields).expect("valid line");
    w.reset("admit")
        .num_field("line", 1.0)
        .num_field("job", 0.0)
        .num_field("release", 17.25);
    let _ = w.close();

    let events = alloc_events(|| {
        for i in 0..256u32 {
            parse_object_into(line, &mut fields).expect("valid line");
            assert_eq!(fields.fields().len(), 5);
            w.reset("admit")
                .num_field("line", f64::from(i))
                .num_field("job", f64::from(i))
                .num_field("release", 17.25);
            assert!(w.close().starts_with(r#"{"type":"admit""#));
        }
    });
    assert_eq!(
        events, 0,
        "NDJSON parse/serialize layer must be allocation-free per \
         record, saw {events} allocation event(s) over 256 round trips"
    );
}
