//! Integration tests for the `mmsec` command-line binary.

use std::process::Command;

fn mmsec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmsec"))
}

#[test]
fn gen_run_roundtrip() {
    let dir = std::env::temp_dir().join(format!("mmsec-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");

    let out = mmsec()
        .args(["gen", "random", "--n", "15", "--ccr", "0.5", "--seed", "9"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(inst.exists());

    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap(), "--policy", "srpt"])
        .output()
        .expect("run runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max stretch"), "{stdout}");
    assert!(stdout.contains("srpt"));

    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap(), "--gantt", "--per-job"])
        .output()
        .expect("gantt runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("time 0 .."), "{stdout}");
    assert!(stdout.contains("J1"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_lists_all_policies() {
    let dir = std::env::temp_dir().join(format!("mmsec-cli-cmp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");
    assert!(mmsec()
        .args(["gen", "kang", "--n", "12", "--edges", "6", "--seed", "3"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = mmsec()
        .args(["compare", "--instance", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["edge-only", "greedy", "srpt", "ssf-edf", "fcfs", "cloud-only", "random"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_writes_parseable_text_to_stdout() {
    let out = mmsec()
        .args(["gen", "random", "--n", "5", "--seed", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed = mmsec_platform::Instance::from_text(&text).expect("parseable");
    assert_eq!(parsed.num_jobs(), 5);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = mmsec().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mmsec()
        .args(["run", "--instance", "/nonexistent/file.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = mmsec().output().unwrap();
    assert!(!out.status.success());
}
