//! Integration tests for the `mmsec` command-line binary.

use std::process::Command;

fn mmsec() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mmsec"))
}

#[test]
fn gen_run_roundtrip() {
    let dir = std::env::temp_dir().join(format!("mmsec-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");

    let out = mmsec()
        .args(["gen", "random", "--n", "15", "--ccr", "0.5", "--seed", "9"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(inst.exists());

    let out = mmsec()
        .args([
            "run",
            "--instance",
            inst.to_str().unwrap(),
            "--policy",
            "srpt",
        ])
        .output()
        .expect("run runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max stretch"), "{stdout}");
    assert!(stdout.contains("srpt"));

    let out = mmsec()
        .args([
            "run",
            "--instance",
            inst.to_str().unwrap(),
            "--gantt",
            "--per-job",
        ])
        .output()
        .expect("gantt runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("time 0 .."), "{stdout}");
    assert!(stdout.contains("J1"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_lists_all_policies() {
    let dir = std::env::temp_dir().join(format!("mmsec-cli-cmp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");
    assert!(mmsec()
        .args(["gen", "kang", "--n", "12", "--edges", "6", "--seed", "3"])
        .args(["--out", inst.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = mmsec()
        .args(["compare", "--instance", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "edge-only",
        "greedy",
        "srpt",
        "ssf-edf",
        "fcfs",
        "cloud-only",
        "random",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_writes_parseable_text_to_stdout() {
    let out = mmsec()
        .args(["gen", "random", "--n", "5", "--seed", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed = mmsec_platform::Instance::from_text(&text).expect("parseable");
    assert_eq!(parsed.num_jobs(), 5);
}

#[test]
fn unknown_flag_is_rejected_with_accepted_set() {
    // A typo like --polcy must fail loudly and name the flags that would
    // have been accepted, not be silently ignored.
    let out = mmsec()
        .args(["run", "--instance", "x.txt", "--polcy", "srpt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --polcy"), "{stderr}");
    assert!(stderr.contains("accepted flags:"), "{stderr}");
    assert!(stderr.contains("--policy"), "{stderr}");

    let out = mmsec()
        .args(["gen", "random", "--n", "5", "--sed", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --sed"), "{stderr}");
    assert!(stderr.contains("--seed"), "{stderr}");
}

#[test]
fn trace_and_metrics_roundtrip() {
    use mmsec_platform::obs::json::{parse, Json};

    let dir = std::env::temp_dir().join(format!("mmsec-cli-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("fig1.txt");
    std::fs::write(&inst, mmsec_platform::figure1_instance().to_text()).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");

    let out = mmsec()
        .args([
            "run",
            "--instance",
            inst.to_str().unwrap(),
            "--policy",
            "ssf-edf",
        ])
        .args(["--trace", trace.to_str().unwrap()])
        .args(["--metrics", metrics.to_str().unwrap()])
        .output()
        .expect("observed run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Metrics: valid JSON with the documented schema and sane counters.
    let doc = parse(&std::fs::read_to_string(&metrics).unwrap()).expect("valid metrics JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mmsec-metrics/2")
    );
    let counters = doc.get("counters").expect("counters section");
    assert_eq!(counters.get("releases").and_then(Json::as_f64), Some(6.0));
    assert_eq!(
        counters.get("completions").and_then(Json::as_f64),
        Some(6.0)
    );
    assert!(
        counters
            .get("binary_search_probes")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0,
        "ssf-edf must report probes"
    );
    for section in ["decide_latency", "stretch", "units", "ready_queue"] {
        assert!(doc.get(section).is_some(), "missing {section}");
    }

    // Chrome trace: valid JSON, monotone non-decreasing timestamps, and
    // every duration-begin has a matching end on the same track.
    let doc = parse(&std::fs::read_to_string(&trace).unwrap()).expect("valid trace JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut last_ts = f64::NEG_INFINITY;
    let mut depth: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "M" {
            continue; // metadata records carry no timestamp ordering
        }
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(ts >= last_ts, "timestamps must be sorted: {ts} < {last_ts}");
        last_ts = ts;
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        match ph {
            "B" => *depth.entry(tid).or_default() += 1,
            "E" => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without B on tid {tid}");
            }
            _ => {}
        }
    }
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced B/E pairs: {depth:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_flag_roundtrip_and_strict_parsing() {
    use mmsec_platform::obs::json::{parse, Json};

    let dir = std::env::temp_dir().join(format!("mmsec-cli-prof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");
    let out = mmsec()
        .args(["gen", "random", "--n", "40", "--seed", "11"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(out.status.success());
    let profile = dir.join("profile.json");

    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap()])
        .args(["--policy", "srpt"])
        .args(["--profile", profile.to_str().unwrap()])
        .output()
        .expect("profiled run runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("wrote phase profile"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The artifact is valid JSON with the documented schema, covers the
    // run loop, and its per-phase shares sum to ~1.
    let doc = parse(&std::fs::read_to_string(&profile).unwrap()).expect("valid profile JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mmsec-profile/1")
    );
    assert_eq!(doc.get("policy").and_then(Json::as_str), Some("srpt"));
    assert!(doc.get("steps").and_then(Json::as_f64).unwrap() > 0.0);
    let coverage = doc.get("coverage").and_then(Json::as_f64).unwrap();
    assert!(
        coverage > 0.95 && coverage <= 1.0 + 1e-9,
        "coverage {coverage}"
    );
    let phases = doc.get("phases").and_then(Json::as_arr).expect("phases");
    assert_eq!(phases.len(), 6);
    let share_sum: f64 = phases
        .iter()
        .map(|p| p.get("share").and_then(Json::as_f64).unwrap())
        .sum();
    assert!((share_sum - 1.0).abs() < 0.05, "share sum {share_sum}");

    // `cargo xtask obs-report` consumes the same artifact (its renderer
    // is unit-tested in the xtask crate; here we only pin the contract
    // that the CLI-side JSON parses into the fields it reads).
    for key in ["decide_skips", "skip_ratio", "loop_wall_seconds"] {
        assert!(doc.get(key).is_some(), "missing {key}");
    }

    // Strict parsing: --profile without a value is a usage error (exit
    // 2) naming the flag, not a file named after the next flag.
    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap(), "--profile"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--profile requires a value"), "{stderr}");

    // ... and a typo'd cadence flag on serve lists the accepted set.
    let out = mmsec()
        .args(["serve", "--instance", inst.to_str().unwrap()])
        .args(["--stats-evry", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --stats-evry"), "{stderr}");
    assert!(stderr.contains("--stats-every"), "{stderr}");

    // ... and --stats-every must be a positive line count.
    let out = mmsec()
        .args(["serve", "--instance", inst.to_str().unwrap()])
        .args(["--stats-every", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_injection_flags_run_and_are_strict() {
    let dir = std::env::temp_dir().join(format!("mmsec-cli-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");
    let out = mmsec()
        .args(["gen", "random", "--n", "30", "--seed", "7"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(out.status.success());

    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap()])
        .args(["--policy", "ssf-edf"])
        .args([
            "--fault-mtbf",
            "50",
            "--fault-mttr",
            "5",
            "--fault-seed",
            "3",
        ])
        .output()
        .expect("faulted run runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("faults        mtbf 50"), "{stdout}");
    assert!(stdout.contains("downtime windows"), "{stdout}");
    // Same fault seed → same outcome; the run is reproducible (everything
    // except the wall-clock decide-time line is bit-identical).
    let again = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap()])
        .args(["--policy", "ssf-edf"])
        .args([
            "--fault-mtbf",
            "50",
            "--fault-mttr",
            "5",
            "--fault-seed",
            "3",
        ])
        .output()
        .expect("faulted run runs");
    let strip_clock = |bytes: &[u8]| -> String {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.starts_with("decide time"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_clock(&out.stdout), strip_clock(&again.stdout));

    // Strict parsing: fault knobs without --fault-mtbf are rejected.
    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap()])
        .args(["--fault-mttr", "5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("require --fault-mtbf"), "{stderr}");
    // ... and a non-positive MTBF is rejected.
    let out = mmsec()
        .args(["run", "--instance", inst.to_str().unwrap()])
        .args(["--fault-mtbf", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = mmsec().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mmsec()
        .args(["run", "--instance", "/nonexistent/file.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = mmsec().output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn trace_export_import_round_trips_through_the_binary() {
    let dir = std::env::temp_dir().join(format!("mmsec-trace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.txt");
    let trace = dir.join("trace.ndjson");
    let back = dir.join("back.txt");

    let out = mmsec()
        .args(["gen", "kang", "--n", "12", "--edges", "4", "--seed", "3"])
        .args(["--out", inst.to_str().unwrap()])
        .output()
        .expect("gen runs");
    assert!(out.status.success());

    let out = mmsec()
        .args(["trace", "export", "--instance", inst.to_str().unwrap()])
        .args(["--out", trace.to_str().unwrap()])
        .output()
        .expect("export runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ndjson = std::fs::read_to_string(&trace).unwrap();
    let mut lines = ndjson.lines();
    assert!(lines.next().unwrap().contains("\"type\":\"spec\""));
    assert_eq!(lines.filter(|l| l.contains("\"type\":\"job\"")).count(), 12);

    let out = mmsec()
        .args(["trace", "import", "--trace", trace.to_str().unwrap()])
        .args(["--out", back.to_str().unwrap()])
        .output()
        .expect("import runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The instance text format is itself canonical: a lossless codec
    // must reproduce the original file byte for byte.
    assert_eq!(
        std::fs::read_to_string(&inst).unwrap(),
        std::fs::read_to_string(&back).unwrap()
    );

    // A malformed trace fails with the validation exit code (4).
    std::fs::write(&trace, "{\"origin\":0,\"work\":1}\n").unwrap();
    let out = mmsec()
        .args(["trace", "import", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("import runs");
    assert_eq!(out.status.code(), Some(4));

    std::fs::remove_dir_all(&dir).ok();
}
