//! Fault-injection integration: registry policies route around injected
//! failures end-to-end, and faulted runs stay deterministic per seed.
//! (Model semantics are unit-tested in `mmsec-faults` and in the engine;
//! see `docs/faults.md`.)

use mmsec_core::PolicyKind;
use mmsec_platform::{
    validate, FaultConfig, Instance, Job, PlatformSpec, Simulation, UnitFaultModel,
};
use mmsec_platform::{EdgeId, Target};
use mmsec_sim::{Interval, Time};
use mmsec_workload::RandomCcrConfig;

fn workload() -> Instance {
    RandomCcrConfig {
        n: 40,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    }
    .generate(3)
}

/// Every registry policy completes a faulted run with a valid schedule,
/// and the injected crashes actually bite (restarts observed somewhere).
#[test]
fn all_policies_survive_uniform_exponential_faults() {
    let inst = workload();
    let plan =
        FaultConfig::uniform_exponential(inst.spec.num_edge(), inst.spec.num_cloud(), 80.0, 5.0)
            .compile(42, Time::new(5_000.0));
    assert!(!plan.is_empty());
    let mut total_restarts = 0;
    for kind in PolicyKind::ALL {
        let mut pol = kind.build(5);
        let out = Simulation::of(&inst)
            .policy(pol.as_mut())
            .faults(&plan)
            .run()
            .unwrap_or_else(|e| panic!("{kind} failed under faults: {e:?}"));
        assert!(out.schedule.all_finished(), "{kind} left jobs unfinished");
        assert!(
            validate(&inst, &out.schedule).is_ok(),
            "{kind} produced an invalid schedule under faults"
        );
        total_restarts += out.stats.restarts;
    }
    assert!(
        total_restarts > 0,
        "no crash ever bit a job across all policies"
    );
}

/// Same instance, same policy seed, same fault plan → bit-identical runs.
#[test]
fn faulted_runs_are_deterministic() {
    let inst = workload();
    let plan =
        FaultConfig::uniform_exponential(inst.spec.num_edge(), inst.spec.num_cloud(), 80.0, 5.0)
            .compile(42, Time::new(5_000.0));
    let mut a = PolicyKind::SsfEdf.build(5);
    let mut b = PolicyKind::SsfEdf.build(5);
    let ra = Simulation::of(&inst)
        .policy(a.as_mut())
        .faults(&plan)
        .run()
        .unwrap();
    let rb = Simulation::of(&inst)
        .policy(b.as_mut())
        .faults(&plan)
        .run()
        .unwrap();
    assert_eq!(ra.schedule, rb.schedule);
    assert_eq!(ra.stats.restarts, rb.stats.restarts);
}

/// A scripted (trace) crash mid-execution forces a restart with the exact
/// paper semantics: progress wiped, job re-released, completion delayed by
/// the downtime plus the lost work.
#[test]
fn trace_fault_forces_restart_with_predictable_timing() {
    // One edge at speed 1, no cloud: work 2 completes at t = 2 fault-free.
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(0)
        .build();
    let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0)]).unwrap();
    let mut cfg = FaultConfig::none(1, 0);
    cfg.edges[0] = UnitFaultModel::Trace(vec![Interval::from_secs(1.0, 3.0)]);
    let plan = cfg.compile(0, Time::new(100.0));

    let mut pol = PolicyKind::EdgeOnly.build(0);
    let plain = Simulation::of(&inst).policy(pol.as_mut()).run().unwrap();
    assert_eq!(plain.schedule.completion[0], Some(Time::new(2.0)));

    let mut pol = PolicyKind::EdgeOnly.build(0);
    let out = Simulation::of(&inst)
        .policy(pol.as_mut())
        .faults(&plan)
        .run()
        .unwrap();
    // Crash at t = 1 wipes one unit of work; restart at recovery t = 3,
    // full re-run of 2 seconds.
    assert_eq!(out.schedule.completion[0], Some(Time::new(5.0)));
    assert_eq!(out.stats.restarts, 1);
    assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
    assert!(validate(&inst, &out.schedule).is_ok());
}
