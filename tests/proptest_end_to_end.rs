//! End-to-end property tests across the whole stack: generators →
//! policies → engine → validator → metrics.

use mmsec_core::PolicyKind;
use mmsec_platform::{validate, Instance, Simulation, StretchReport};
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

fn arb_random_cfg() -> impl Strategy<Value = RandomCcrConfig> {
    (
        1usize..25,   // n
        0.1f64..10.0, // ccr
        0.05f64..2.0, // load
        1usize..4,    // clouds
        1usize..3,    // slow edges
        0usize..3,    // fast edges
    )
        .prop_map(|(n, ccr, load, num_cloud, slow, fast)| RandomCcrConfig {
            n,
            ccr,
            load,
            num_cloud,
            slow_edges: slow,
            fast_edges: fast,
            ..RandomCcrConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated random-CCR instance is valid, scheduleable by every
    /// policy, and yields stretches ≥ 1.
    #[test]
    fn random_ccr_end_to_end(cfg in arb_random_cfg(), seed in any::<u64>()) {
        let inst = cfg.generate(seed);
        prop_assert!(inst.validate().is_ok());
        for kind in [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf, PolicyKind::EdgeOnly] {
            let mut policy = kind.build(seed);
            let out = Simulation::of(&inst).policy(policy.as_mut()).run()
                .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
            if let Err(v) = validate(&inst, &out.schedule) {
                return Err(TestCaseError::fail(format!("{kind}: {}", v[0])));
            }
            let r = StretchReport::new(&inst, &out.schedule);
            prop_assert!(r.max_stretch >= 1.0 - 1e-9);
            prop_assert!(r.mean_stretch <= r.max_stretch + 1e-9);
        }
    }

    /// Kang instances: same end-to-end guarantee, plus dn = 0 invariants.
    #[test]
    fn kang_end_to_end(
        n in 1usize..20,
        num_edge in 1usize..8,
        load in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let cfg = KangConfig { n, num_edge, num_cloud: 3, load, ..KangConfig::default() };
        let inst = cfg.generate(seed);
        prop_assert!(inst.jobs.iter().all(|j| j.dn == 0.0));
        for kind in [PolicyKind::Srpt, PolicyKind::SsfEdf] {
            let mut policy = kind.build(seed);
            let out = Simulation::of(&inst).policy(policy.as_mut()).run()
                .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
            if let Err(v) = validate(&inst, &out.schedule) {
                return Err(TestCaseError::fail(format!("{kind}: {}", v[0])));
            }
            // Downlink interval sets stay empty for dn = 0 jobs.
            for i in 0..inst.num_jobs() {
                prop_assert!(out.schedule.dn[i].is_empty());
            }
        }
    }

    /// Instance text serialization round-trips exactly.
    #[test]
    fn instance_text_roundtrip(cfg in arb_random_cfg(), seed in any::<u64>()) {
        let inst = cfg.generate(seed);
        let text = inst.to_text();
        let back = Instance::from_text(&text)
            .map_err(|e| TestCaseError::fail(format!("parse: {e}")))?;
        prop_assert_eq!(inst, back);
    }

    /// The stretch-so-far optimum (offline single machine) lower-bounds
    /// what Edge-Only achieves per edge unit on single-edge instances.
    #[test]
    fn edge_only_dominated_by_offline_optimum(
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        use mmsec_offline::single_machine::{optimal_max_stretch, OfflineJob};
        let cfg = RandomCcrConfig {
            n,
            num_cloud: 0,
            slow_edges: 1,
            fast_edges: 0,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(seed);
        let speed = inst.spec.edge_speed(mmsec_platform::EdgeId(0));
        let jobs: Vec<OfflineJob> = inst
            .jobs
            .iter()
            .map(|j| OfflineJob {
                release: j.release.seconds(),
                proc_time: j.work / speed,
                min_time: j.min_time(&inst.spec),
            })
            .collect();
        let offline_opt = optimal_max_stretch(&jobs, 1e-6);
        let mut policy = PolicyKind::EdgeOnly.build(seed);
        let out = Simulation::of(&inst).policy(policy.as_mut()).run().unwrap();
        let got = StretchReport::new(&inst, &out.schedule).max_stretch;
        prop_assert!(
            got >= offline_opt - 1e-4,
            "edge-only {} beat the offline optimum {}",
            got,
            offline_opt
        );
    }
}
