//! The engine-option matrix: every combination of {one-port/∞-port,
//! preemption on/off, re-execution on/off} must yield valid schedules for
//! every policy, and the restricted modes must exhibit their defining
//! invariants.

use mmsec_core::PolicyKind;
use mmsec_platform::{validate_with, EngineOptions, Simulation, StretchReport, ValidateOptions};
use mmsec_workload::RandomCcrConfig;

fn cfg() -> RandomCcrConfig {
    RandomCcrConfig {
        n: 40,
        ccr: 1.0,
        load: 0.4,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    }
}

fn option_matrix() -> Vec<EngineOptions> {
    let mut out = Vec::new();
    for infinite_ports in [false, true] {
        for allow_preemption in [true, false] {
            for allow_reexecution in [true, false] {
                out.push(EngineOptions {
                    infinite_ports,
                    allow_preemption,
                    allow_reexecution,
                    ..EngineOptions::default()
                });
            }
        }
    }
    out
}

#[test]
fn every_option_combination_validates() {
    let inst = cfg().generate(31);
    for opts in option_matrix() {
        for kind in [
            PolicyKind::Greedy,
            PolicyKind::Srpt,
            PolicyKind::SsfEdf,
            PolicyKind::Fcfs,
        ] {
            let mut policy = kind.build(1);
            let out = Simulation::of(&inst)
                .policy(policy.as_mut())
                .options(opts)
                .run()
                .unwrap_or_else(|e| panic!("{kind} with {opts:?}: {e}"));
            assert!(out.schedule.all_finished(), "{kind} with {opts:?}");
            let vopts = ValidateOptions {
                check_ports: !opts.infinite_ports,
                ..ValidateOptions::default()
            };
            if let Err(v) = validate_with(&inst, &out.schedule, vopts) {
                panic!(
                    "{kind} with {opts:?}: {} violations, first {}",
                    v.len(),
                    v[0]
                );
            }
            let r = StretchReport::new(&inst, &out.schedule);
            assert!(r.max_stretch >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn no_reexecution_means_no_restarts() {
    let inst = cfg().generate(32);
    let opts = EngineOptions {
        allow_reexecution: false,
        ..EngineOptions::default()
    };
    for kind in [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf] {
        let mut policy = kind.build(2);
        let out = Simulation::of(&inst)
            .policy(policy.as_mut())
            .options(opts)
            .run()
            .unwrap();
        assert_eq!(out.stats.restarts, 0, "{kind} restarted without permission");
        assert!(out.schedule.restarts.iter().all(|&r| r == 0));
        assert!(out.schedule.abandoned.is_empty());
    }
}

#[test]
fn non_preemptive_phases_are_contiguous() {
    let inst = cfg().generate(33);
    let opts = EngineOptions {
        allow_preemption: false,
        allow_reexecution: false,
        ..EngineOptions::default()
    };
    for kind in [PolicyKind::Srpt, PolicyKind::Fcfs] {
        let mut policy = kind.build(3);
        let out = Simulation::of(&inst)
            .policy(policy.as_mut())
            .options(opts)
            .run()
            .unwrap();
        for i in 0..inst.num_jobs() {
            // Each phase of each job runs in at most one contiguous block.
            assert!(
                out.schedule.exec[i].len() <= 1,
                "{kind}: job {i} exec preempted: {:?}",
                out.schedule.exec[i]
            );
            assert!(out.schedule.up[i].len() <= 1);
            assert!(out.schedule.dn[i].len() <= 1);
        }
    }
}

#[test]
fn preemption_never_hurts_ssf_edf_on_average() {
    // Not a theorem per-instance (anomalies exist) — but averaged over a
    // batch, the paper's model (preemption on) must not lose to the
    // restricted one for the deadline-driven policy.
    let mut with_sum = 0.0;
    let mut without_sum = 0.0;
    for seed in 0..10u64 {
        let inst = cfg().generate(100 + seed);
        let mut a = PolicyKind::SsfEdf.build(1);
        with_sum += StretchReport::new(
            &inst,
            &Simulation::of(&inst)
                .policy(a.as_mut())
                .run()
                .unwrap()
                .schedule,
        )
        .max_stretch;
        let mut b = PolicyKind::SsfEdf.build(1);
        without_sum += StretchReport::new(
            &inst,
            &Simulation::of(&inst)
                .policy(b.as_mut())
                .options(EngineOptions {
                    allow_preemption: false,
                    allow_reexecution: false,
                    ..EngineOptions::default()
                })
                .run()
                .unwrap()
                .schedule,
        )
        .max_stretch;
    }
    assert!(
        with_sum <= without_sum * 1.05,
        "preemption hurt on average: {with_sum} vs {without_sum}"
    );
}
