//! Integration: the §IV NP-hardness reductions hold numerically over
//! randomized trials (both directions of Theorems 1–3).

use mmsec_bench::hardness::verify_reductions;
use mmsec_offline::brute::optimal_mmsh;
use mmsec_offline::reductions::{
    has_three_partition, has_two_partition_eq, three_partition_to_mmsh, two_partition_eq_to_mmsh,
};

#[test]
fn randomized_reduction_cross_checks() {
    let report = verify_reductions(20, 0xBEEF);
    assert!(
        report.all_consistent,
        "reduction cross-checks disagreed:\n{}",
        report.table.to_markdown()
    );
}

#[test]
fn theorem1_canonical_yes_and_no() {
    // YES: {1,2,3,4} with {1,4}/{2,3}.
    let (inst, thr) = two_partition_eq_to_mmsh(&[1, 2, 3, 4]);
    assert!(optimal_mmsh(&inst).max_stretch <= thr + 1e-9);
    // NO: {2,3,4,7} (all < S = 8, no equal-cardinality half-sum split).
    assert!(!has_two_partition_eq(&[2, 3, 4, 7]));
    let (inst, thr) = two_partition_eq_to_mmsh(&[2, 3, 4, 7]);
    assert!(optimal_mmsh(&inst).max_stretch > thr + 1e-9);
}

#[test]
fn theorem2_canonical_yes_and_no() {
    // YES: B = 20, {6,7,7} + {6,6,8}.
    let a = [6u64, 7, 7, 6, 6, 8];
    assert!(has_three_partition(&a, 20));
    let (inst, thr) = three_partition_to_mmsh(&a, 20);
    assert!(optimal_mmsh(&inst).max_stretch <= thr + 1e-9);
    // NO: {6,6,6,9,6,7} sums to 40 but no triple reaches 20.
    let a = [6u64, 6, 6, 9, 6, 7];
    assert!(!has_three_partition(&a, 20));
    let (inst, thr) = three_partition_to_mmsh(&a, 20);
    assert!(optimal_mmsh(&inst).max_stretch > thr + 1e-9);
}

#[test]
fn theorem1_threshold_formula() {
    // n = 3 (six numbers): threshold (9 + 3 + 2)/4 = 3.5.
    let a = [1u64, 2, 3, 4, 5, 9];
    let (_, thr) = two_partition_eq_to_mmsh(&a);
    assert!((thr - 14.0 / 4.0).abs() < 1e-12);
}

#[test]
fn large_side_job_precondition_is_enforced() {
    // {1,1,1,5}: a_4 = 5 ≥ S = 4 — the construction must refuse it (such
    // instances are trivially "no" and outside the reduction's domain;
    // accepting them would break the no-direction, see DESIGN.md).
    let result = std::panic::catch_unwind(|| two_partition_eq_to_mmsh(&[1, 1, 1, 5]));
    assert!(result.is_err());
}
