//! Golden regression tests: exact max-stretch values of every policy on
//! two fixed instances. These pin the *behavior* of the heuristics — any
//! change to decision logic, tie-breaking, engine semantics, or generator
//! sampling shows up here first.
//!
//! If a change to a heuristic is INTENTIONAL, regenerate the constants
//! (the expected values are produced by running each policy on
//! `RandomCcrConfig{n:80, ccr:1, load:0.3, 6 clouds, 3+3 edges}.generate(424242)`
//! and `KangConfig{n:80, 12 edges, 4 clouds}.generate(424242)` with policy
//! seed 11) and justify the delta in the commit.
//!
//! NOTE: the constants below were produced with the offline `compat/rand`
//! stub (xoshiro256++-backed `StdRng`). Swapping the real `rand` crate
//! back in changes the sampled instances and requires regeneration; see
//! `compat/README.md`.

use mmsec_core::PolicyKind;
use mmsec_platform::{validate, Simulation, StretchReport};
use mmsec_workload::{KangConfig, RandomCcrConfig};

const GOLDEN: [(&str, f64, f64); 7] = [
    ("edge-only", 25.347763273044, 1.889926286681),
    ("greedy", 2.654181501811, 2.480915313072),
    ("srpt", 2.273706298370, 1.889926286681),
    ("ssf-edf", 2.026217898667, 1.889926286681),
    ("fcfs", 13.048103266584, 2.882795624786),
    ("cloud-only", 113.060795456141, 4194.826712471643),
    ("random", 11.485762028979, 1150.864087085813),
];

fn instances() -> (mmsec_platform::Instance, mmsec_platform::Instance) {
    let random = RandomCcrConfig {
        n: 80,
        ccr: 1.0,
        load: 0.3,
        num_cloud: 6,
        slow_edges: 3,
        fast_edges: 3,
        ..RandomCcrConfig::default()
    }
    .generate(424242);
    let kang = KangConfig {
        n: 80,
        num_edge: 12,
        num_cloud: 4,
        ..KangConfig::default()
    }
    .generate(424242);
    (random, kang)
}

#[test]
fn golden_max_stretches() {
    let (random, kang) = instances();
    for (name, expect_random, expect_kang) in GOLDEN {
        let kind = PolicyKind::parse(name).expect("known policy");
        let mut policy = kind.build(11);
        let out = Simulation::of(&random)
            .policy(policy.as_mut())
            .run()
            .unwrap();
        assert!(validate(&random, &out.schedule).is_ok());
        let got = StretchReport::new(&random, &out.schedule).max_stretch;
        assert!(
            (got - expect_random).abs() < 1e-9,
            "{name} on random: got {got:.12}, golden {expect_random:.12}"
        );

        let mut policy = kind.build(11);
        let out = Simulation::of(&kang).policy(policy.as_mut()).run().unwrap();
        assert!(validate(&kang, &out.schedule).is_ok());
        let got = StretchReport::new(&kang, &out.schedule).max_stretch;
        assert!(
            (got - expect_kang).abs() < 1e-9,
            "{name} on kang: got {got:.12}, golden {expect_kang:.12}"
        );
    }
}

/// The golden instances themselves are stable (generator regression).
#[test]
fn golden_instance_fingerprints() {
    let (random, kang) = instances();
    let fingerprint = |inst: &mmsec_platform::Instance| -> (f64, f64, f64) {
        let w: f64 = inst.jobs.iter().map(|j| j.work).sum();
        let r: f64 = inst.jobs.iter().map(|j| j.release.seconds()).sum();
        let c: f64 = inst.jobs.iter().map(|j| j.up + j.dn).sum();
        (w, r, c)
    };
    let (w, r, c) = fingerprint(&random);
    assert!(
        (w - 444.544928239938).abs() < 1e-6,
        "random works sum {w:.13}"
    );
    assert!(r > 0.0 && c > 0.0);
    let (w2, _, _) = fingerprint(&kang);
    assert!((w2 / 80.0 - 6.0).abs() < 0.5, "kang mean work {w2}");
}
