//! The NDJSON trace codec is lossless: `export → import` reproduces the
//! instance **bit-for-bit** (numbers are serialized in Rust's shortest
//! round-trip form), so replaying a trace yields bit-identical
//! schedules, completions, and stretches to simulating the original.
//!
//! The property sweeps generated workloads on flat platforms and on
//! random multi-tier continuum platforms (random hop factors, random
//! cloud→tier assignment, random unavailability windows), which pins the
//! full spec-record schema: speed lists, `hop-up`/`hop-dn`,
//! `cloud-tiers`, and `unavail`.

use mmsec_apps::trace::{read_trace, write_trace};
use mmsec_core::PolicyKind;
use mmsec_platform::{CloudId, Instance, PlatformSpec, Simulation, StretchReport};
use mmsec_sim::Interval;
use mmsec_workload::{KangConfig, RandomCcrConfig};
use proptest::prelude::*;

/// Flat workloads from both generator families.
fn arb_flat() -> impl Strategy<Value = Instance> {
    let kang = (2usize..20, 0u64..1000).prop_map(|(n, seed)| {
        KangConfig {
            num_edge: 4,
            num_cloud: 3,
            n,
            ..KangConfig::default()
        }
        .generate(seed)
    });
    let ccr = (2usize..20, 0u64..1000, 1usize..4).prop_map(|(n, seed, num_cloud)| {
        RandomCcrConfig {
            n,
            num_cloud,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        }
        .generate(seed)
    });
    prop_oneof![kang, ccr]
}

/// Re-platforms a flat instance onto a random continuum: 1–3 tiers with
/// random hop factors, each cloud at a random tier, and optionally an
/// unavailability window on cloud 0.
fn arb_tiered() -> impl Strategy<Value = Instance> {
    (
        arb_flat(),
        proptest::collection::vec((0.25f64..4.0, 0.25f64..4.0), 1..4),
        proptest::collection::vec(1usize..4, 8),
        (any::<bool>(), 1.0f64..40.0, 0.5f64..15.0),
    )
        .prop_map(|(inst, hops, tiers, (windowed, start, len))| {
            let window = windowed.then_some((start, len));
            let spec = &inst.spec;
            let depth = hops.len();
            let mut b = PlatformSpec::builder().edges(spec.edges().map(|j| spec.edge_speed(j)));
            for (u, d) in hops {
                b = b.tier(u, d);
            }
            for (i, k) in spec.clouds().enumerate() {
                b = b.cloud_at(spec.cloud_speed(k), tiers[i % tiers.len()].min(depth));
            }
            if let Some((start, len)) = window {
                if spec.num_cloud() > 0 {
                    b = b.unavailability(CloudId(0), Interval::from_secs(start, start + len));
                }
            }
            Instance::new(b.build(), inst.jobs.clone()).expect("re-platformed instance valid")
        })
}

/// Export → import must be the identity on the instance (which is
/// `PartialEq` over every `f64` field, i.e. bitwise for non-NaN data).
fn assert_round_trip(inst: &Instance) {
    let mut buf = Vec::new();
    write_trace(inst, &mut buf).expect("export in-memory");
    let back = read_trace(buf.as_slice()).expect("import what we exported");
    assert_eq!(&back, inst, "trace round-trip must be lossless");
}

/// ...and therefore simulating the replayed instance gives bit-identical
/// completions and stretches under every policy in the registry.
fn assert_identical_runs(inst: &Instance) {
    let mut buf = Vec::new();
    write_trace(inst, &mut buf).unwrap();
    let back = read_trace(buf.as_slice()).unwrap();
    for kind in PolicyKind::ALL {
        if kind == PolicyKind::CloudOnly && inst.spec.num_cloud() == 0 {
            continue;
        }
        let mut p1 = kind.build(7);
        let mut p2 = kind.build(7);
        let a = Simulation::of(inst).policy(p1.as_mut()).run();
        let b = Simulation::of(&back).policy(p2.as_mut()).run();
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.schedule, b.schedule,
                    "{kind}: schedules diverge after replay"
                );
                let ra = StretchReport::new(inst, &a.schedule);
                let rb = StretchReport::new(&back, &b.schedule);
                assert_eq!(
                    ra.max_stretch.to_bits(),
                    rb.max_stretch.to_bits(),
                    "{kind}: max stretch diverges after replay"
                );
            }
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "{kind}: one run failed"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_traces_round_trip(inst in arb_flat()) {
        assert_round_trip(&inst);
        assert_identical_runs(&inst);
    }

    #[test]
    fn tiered_traces_round_trip(inst in arb_tiered()) {
        assert_round_trip(&inst);
        assert_identical_runs(&inst);
    }
}
