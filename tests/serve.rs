//! Integration tests for the streaming serve loop (`mmsec serve`): the
//! in-memory core in `mmsec_apps::serve`, and the binary end to end.

use mmsec_apps::ndjson::{parse_object, Value};
use mmsec_apps::serve::{serve, ServeConfig};
use mmsec_core::PolicyKind;
use mmsec_platform::{EdgeId, StretchReport};
use mmsec_platform::{Instance, Job, PlatformSpec, Simulation};
use std::io::Cursor;
use std::process::{Command, Stdio};

fn platform() -> Instance {
    let spec = PlatformSpec::builder()
        .edges(vec![0.5, 0.8])
        .cloud_pool(2)
        .build();
    Instance::new(spec, vec![]).unwrap()
}

/// Runs the serve loop over `lines` and returns the parsed output
/// records as (type, fields) pairs.
fn serve_lines(inst: &Instance, cfg: &ServeConfig, lines: &str) -> Vec<Vec<(String, Value)>> {
    let mut out = Vec::new();
    serve(inst, cfg, Cursor::new(lines.to_string()), &mut out, None).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| parse_object(l).unwrap())
        .collect()
}

fn kind_of(rec: &[(String, Value)]) -> &str {
    rec.iter()
        .find(|(k, _)| k == "type")
        .and_then(|(_, v)| v.as_str())
        .expect("every record has a type")
}

fn num(rec: &[(String, Value)], key: &str) -> f64 {
    rec.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_num())
        .unwrap_or_else(|| panic!("missing numeric field {key}"))
}

#[test]
fn round_trip_emits_admits_completions_heartbeats_and_summary() {
    let inst = platform();
    let input = r#"
{"origin": 0, "release": 1.0, "work": 2.0, "up": 0.5, "dn": 0.25}
{"origin": 1, "release": 2.0, "work": 1.0}
{"origin": 0, "release": 12.0, "work": 1.0}
"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);

    assert_eq!(kind_of(&recs[0]), "hello");
    let admits: Vec<_> = recs.iter().filter(|r| kind_of(r) == "admit").collect();
    let completions: Vec<_> = recs.iter().filter(|r| kind_of(r) == "completion").collect();
    let beats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "heartbeat").collect();
    assert_eq!(admits.len(), 3);
    assert_eq!(completions.len(), 3);
    assert!(!beats.is_empty(), "a 12s-horizon run must beat at 10s");

    // Heartbeat timestamps are strictly monotone.
    let times: Vec<f64> = beats.iter().map(|r| num(r, "now")).collect();
    assert!(
        times.windows(2).all(|w| w[0] < w[1]),
        "heartbeats not monotone: {times:?}"
    );

    // The summary agrees with the per-record counts.
    let summary = recs.last().unwrap();
    assert_eq!(kind_of(summary), "summary");
    assert_eq!(num(summary, "admitted"), 3.0);
    assert_eq!(num(summary, "completed"), 3.0);
    assert_eq!(num(summary, "rejected"), 0.0);
    let max_stretch = completions
        .iter()
        .map(|r| num(r, "stretch"))
        .fold(0.0, f64::max);
    assert!((num(summary, "max_stretch") - max_stretch).abs() < 1e-12);
}

#[test]
fn streamed_run_matches_batch_simulation() {
    // The same workload, streamed through serve vs. simulated in batch,
    // must produce identical completion times and stretches.
    let spec = PlatformSpec::builder()
        .edges(vec![0.5, 0.8])
        .cloud_pool(2)
        .build();
    let jobs = vec![
        Job::new(EdgeId(0), 1.0, 2.0, 0.5, 0.25),
        Job::new(EdgeId(1), 2.0, 1.0, 0.0, 0.0),
        Job::new(EdgeId(0), 4.5, 3.0, 1.0, 1.0),
    ];
    let batch_inst = Instance::new(spec, jobs.clone()).unwrap();
    let mut policy = PolicyKind::SsfEdf.build(0);
    let batch = Simulation::of(&batch_inst)
        .policy(policy.as_mut())
        .run()
        .unwrap();
    let report = StretchReport::new(&batch_inst, &batch.schedule);

    let input: String = jobs
        .iter()
        .map(|j| {
            format!(
                "{{\"origin\": {}, \"release\": {}, \"work\": {}, \"up\": {}, \"dn\": {}}}\n",
                j.origin.0, j.release, j.work, j.up, j.dn
            )
        })
        .collect();
    let recs = serve_lines(&platform(), &ServeConfig::default(), &input);
    let completions: Vec<_> = recs.iter().filter(|r| kind_of(r) == "completion").collect();
    assert_eq!(completions.len(), jobs.len());
    for rec in completions {
        let job = num(rec, "job") as usize;
        let batch_completion = batch.schedule.completion[job].unwrap().seconds();
        assert!((num(rec, "completion") - batch_completion).abs() < 1e-12);
        assert!((num(rec, "stretch") - report.stretches[job]).abs() < 1e-9);
    }
}

fn has_field(rec: &[(String, Value)], key: &str) -> bool {
    rec.iter().any(|(k, _)| k == key)
}

#[test]
fn heartbeats_carry_the_v4_stats_payload() {
    let inst = platform();
    let input = r#"
{"origin": 0, "release": 1.0, "work": 2.0, "up": 0.5, "dn": 0.25}
{"origin": 1, "release": 2.0, "work": 1.0}
{"origin": 0, "release": 25.0, "work": 1.0}
"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);
    let beats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "heartbeat").collect();
    assert!(
        beats.len() >= 2,
        "a 25s-horizon run must beat at 10s and 20s"
    );
    for beat in &beats {
        assert_eq!(num(beat, "v"), 4.0);
        for key in [
            "now",
            "pending",
            "running",
            "unfinished",
            "decides",
            "decide_skips",
            "admitted",
            "shed",
            "admitted_delta",
            "shed_delta",
            "completed_delta",
            "platform_version",
            "edges",
            "clouds",
            "tiers",
            "max_stretch",
        ] {
            assert!(has_field(beat, key), "heartbeat missing {key}");
        }
        // No --speedup: there is no replay clock to lag behind.
        assert!(!has_field(beat, "lag"));
    }
    // Counters are monotone across the stream, and the per-interval
    // completion deltas sum to the final completion total.
    for key in ["now", "decides", "completed", "admitted"] {
        let vals: Vec<f64> = beats.iter().map(|r| num(r, key)).collect();
        assert!(
            vals.windows(2).all(|w| w[0] <= w[1]),
            "heartbeat {key} not monotone: {vals:?}"
        );
    }
    let summary = recs.last().unwrap();
    let delta_sum: f64 = beats.iter().map(|r| num(r, "completed_delta")).sum();
    let last_beat_completed = beats.last().map(|r| num(r, "completed")).unwrap();
    assert_eq!(delta_sum, last_beat_completed);
    assert!(last_beat_completed <= num(summary, "completed"));
}

#[test]
fn stats_every_emits_records_on_the_line_cadence() {
    let inst = platform();
    let input = r#"
{"origin": 0, "release": 1.0, "work": 2.0}
{"origin": 1, "release": 2.0, "work": 1.0}
not json at all
{"origin": 0, "release": 4.0, "work": 1.0}
{"origin": 1, "release": 5.0, "work": 2.0}
"#;
    let cfg = ServeConfig {
        stats_every: Some(2),
        ..ServeConfig::default()
    };
    let recs = serve_lines(&inst, &cfg, input);
    assert!(
        has_field(&recs[0], "stats_every"),
        "hello advertises cadence"
    );
    let stats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "stats").collect();
    // 5 input lines (rejects count) at a cadence of 2 -> lines 2 and 4.
    let lines: Vec<f64> = stats.iter().map(|r| num(r, "line")).collect();
    assert_eq!(lines, vec![2.0, 4.0]);
    for rec in &stats {
        assert_eq!(num(rec, "v"), 4.0);
        for key in [
            "now", "pending", "running", "decides", "admitted", "rejected",
        ] {
            assert!(has_field(rec, key), "stats missing {key}");
        }
    }
    let times: Vec<f64> = stats.iter().map(|r| num(r, "now")).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "stats timestamps not monotone: {times:?}"
    );
    // The stats stream's own deltas sum to its final totals.
    let admitted_deltas: f64 = stats.iter().map(|r| num(r, "admitted_delta")).sum();
    assert_eq!(admitted_deltas, num(stats.last().unwrap(), "admitted"));
}

#[test]
fn stats_every_zero_is_a_usage_error() {
    use mmsec_apps::cli::CliError;
    let inst = platform();
    let cfg = ServeConfig {
        stats_every: Some(0),
        ..ServeConfig::default()
    };
    let mut out = Vec::new();
    let err = serve(&inst, &cfg, Cursor::new(String::new()), &mut out, None).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "got {err:?}");
}

#[test]
fn bounded_admission_sheds_with_an_explicit_record() {
    let inst = platform();
    // Three simultaneous heavy jobs against a cap of 2 unfinished.
    let input = r#"
{"origin": 0, "release": 0.0, "work": 50.0}
{"origin": 0, "release": 0.0, "work": 50.0}
{"origin": 0, "release": 0.0, "work": 50.0}
"#;
    let cfg = ServeConfig {
        max_pending: Some(2),
        ..ServeConfig::default()
    };
    let recs = serve_lines(&inst, &cfg, input);
    let sheds: Vec<_> = recs.iter().filter(|r| kind_of(r) == "shed").collect();
    assert_eq!(sheds.len(), 1);
    assert_eq!(num(sheds[0], "line"), 3.0);
    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "admitted"), 2.0);
    assert_eq!(num(summary, "shed"), 1.0);
    assert_eq!(num(summary, "completed"), 2.0);
}

#[test]
fn bad_lines_are_rejected_not_fatal() {
    let inst = platform();
    let input = r#"
not json at all
{"origin": 99, "release": 0.0, "work": 1.0}
{"origin": 0, "work": -3.0}
{"origin": 0, "frobnicate": 1}
{"origin": 0, "release": 0.0, "work": 1.0}
"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);
    let rejects: Vec<_> = recs.iter().filter(|r| kind_of(r) == "reject").collect();
    assert_eq!(rejects.len(), 4);
    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "rejected"), 4.0);
    assert_eq!(num(summary, "admitted"), 1.0);
    assert_eq!(num(summary, "completed"), 1.0);
}

fn txt<'a>(rec: &'a [(String, Value)], key: &str) -> &'a str {
    rec.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing string field {key}"))
}

#[test]
fn platform_records_mutate_the_session_mid_stream() {
    let inst = platform();
    // Mutations interleave with submissions; `set_link` uses the
    // underscore spelling, which the parser normalises to `set-link`.
    let input = r#"
{"type": "platform", "op": "add-cloud", "speed": 2.0}
{"origin": 0, "release": 1.0, "work": 2.0}
{"type": "platform", "op": "set_link", "unit": 0, "factor": 0.5}
"#;
    let cfg = ServeConfig {
        stats_every: Some(1),
        ..ServeConfig::default()
    };
    let recs = serve_lines(&inst, &cfg, input);

    let oks: Vec<_> = recs
        .iter()
        .filter(|r| kind_of(r) == "platform-ok")
        .collect();
    assert_eq!(oks.len(), 2);
    assert_eq!(txt(oks[0], "op"), "add-cloud");
    assert_eq!(num(oks[0], "version"), 2.0);
    assert_eq!(num(oks[0], "edges"), 2.0);
    assert_eq!(num(oks[0], "clouds"), 3.0);
    assert_eq!(txt(oks[1], "op"), "set-link");
    assert_eq!(num(oks[1], "version"), 3.0);

    // Every input line (mutations included) falls on the stats cadence,
    // and the payload tracks the platform version as it bumps.
    let stats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "stats").collect();
    assert_eq!(stats.len(), 3);
    assert_eq!(num(stats[0], "platform_version"), 2.0);
    assert_eq!(num(stats[0], "clouds"), 3.0);
    assert_eq!(num(stats[2], "platform_version"), 3.0);

    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "admitted"), 1.0);
    assert_eq!(num(summary, "completed"), 1.0);
    assert_eq!(num(summary, "rejected"), 0.0);
}

#[test]
fn malformed_platform_records_are_rejected_not_fatal() {
    let inst = platform();
    // Unknown op, unknown unit, remove-twice, negative speed, missing
    // field, missing op — each a typed reject, none fatal; the one valid
    // removal and the final job still go through.
    let input = r#"
{"type": "platform", "op": "frobnicate"}
{"type": "platform", "op": "set-link", "unit": 99, "factor": 0.5}
{"type": "platform", "op": "remove-cloud", "unit": 1}
{"type": "platform", "op": "remove-cloud", "unit": 1}
{"type": "platform", "op": "add-edge", "speed": -1.0}
{"type": "platform", "op": "set-edge-speed", "unit": 0}
{"type": "platform"}
{"origin": 0, "release": 0.0, "work": 1.0}
"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);

    let rejects: Vec<_> = recs.iter().filter(|r| kind_of(r) == "reject").collect();
    assert_eq!(rejects.len(), 6);
    assert!(txt(rejects[0], "error").contains("unknown op"));
    assert!(txt(rejects[1], "error").contains("unknown edge"));
    assert!(txt(rejects[2], "error").contains("already removed"));
    assert!(txt(rejects[3], "error").contains("speed must be positive"));
    assert!(txt(rejects[4], "error").contains("needs a \"speed\" field"));
    assert!(txt(rejects[5], "error").contains("missing field \"op\""));

    let oks: Vec<_> = recs
        .iter()
        .filter(|r| kind_of(r) == "platform-ok")
        .collect();
    assert_eq!(oks.len(), 1);
    assert_eq!(num(oks[0], "clouds"), 1.0);

    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "rejected"), 6.0);
    assert_eq!(num(summary, "admitted"), 1.0);
    assert_eq!(num(summary, "completed"), 1.0);
}

#[test]
fn heartbeats_stay_monotone_when_one_advance_skips_many_boundaries() {
    // Regression: a session whose next event lies far beyond several
    // heartbeat boundaries used to emit one heartbeat per boundary, all
    // stamped with the same post-advance `now` and a payload from before
    // the advance (a job could show as pending in a beat emitted after
    // its completion record). One crossing must yield one beat.
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 50.0, 1.0, 0.0, 0.0)]).unwrap();
    let input = r#"{"origin": 0, "release": 55.0, "work": 1.0}"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);

    let beats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "heartbeat").collect();
    let times: Vec<f64> = beats.iter().map(|r| num(r, "now")).collect();
    assert!(
        times.windows(2).all(|w| w[0] < w[1]),
        "heartbeat timestamps not strictly monotone: {times:?}"
    );
    // Crossing boundaries 10..50 in one advance yields exactly one beat,
    // stamped where the session actually paused.
    assert_eq!(times, vec![50.0]);
    // The payload reflects the state *after* the advance: the preloaded
    // job cannot have completed at t = 50 and is still accounted for.
    assert_eq!(num(beats[0], "completed"), 0.0);
    assert!(num(beats[0], "unfinished") >= 1.0);

    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "completed"), 2.0);
}

#[test]
fn unstarted_drain_emits_no_stale_or_duplicate_heartbeats() {
    // Regression: draining a session that never started (its only job's
    // release lies many heartbeat boundaries in the future) used to emit
    // one heartbeat per boundary, all stamped with the stale pre-start
    // clock — duplicated, non-monotone timestamps. The drain must jump
    // to the first event and beat once, where the session actually is.
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let inst = Instance::new(spec, vec![]).unwrap();
    let input = r#"{"origin": 0, "release": 55.0, "work": 1.0}"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);

    let beats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "heartbeat").collect();
    let times: Vec<f64> = beats.iter().map(|r| num(r, "now")).collect();
    assert!(
        times.windows(2).all(|w| w[0] < w[1]),
        "heartbeat timestamps not strictly monotone: {times:?}"
    );
    assert_eq!(times, vec![55.0], "one beat, stamped at the first pause");
    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "completed"), 1.0);
}

#[test]
fn stats_never_precede_the_last_heartbeat() {
    // Regression: a `stats` record (line cadence) must never carry a
    // timestamp earlier than the last `heartbeat` (virtual-time cadence)
    // on the same stream. Before the unstarted-session fix, a heartbeat
    // could be emitted with a stale pre-start clock while later stats
    // reported an earlier `now`. Far-future releases exercise exactly
    // that path.
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let inst = Instance::new(spec, vec![]).unwrap();
    let input = r#"
{"origin": 0, "release": 15.0, "work": 1.0}
{"origin": 0, "release": 25.0, "work": 1.0}
{"origin": 0, "release": 47.0, "work": 2.0}
"#;
    let cfg = ServeConfig {
        stats_every: Some(1),
        ..ServeConfig::default()
    };
    let recs = serve_lines(&inst, &cfg, input);

    let mut last_beat = f64::NEG_INFINITY;
    for rec in &recs {
        match kind_of(rec) {
            "heartbeat" => {
                let now = num(rec, "now");
                assert!(
                    now > last_beat,
                    "heartbeat at {now} not after previous at {last_beat}"
                );
                last_beat = now;
            }
            "stats" => {
                let now = num(rec, "now");
                assert!(
                    now >= last_beat,
                    "stats at {now} precedes last heartbeat at {last_beat}"
                );
            }
            _ => {}
        }
    }
    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "completed"), 3.0);
}

#[test]
fn preloaded_instance_jobs_run_as_a_warm_batch() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)]).unwrap();
    let recs = serve_lines(&inst, &ServeConfig::default(), "");
    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "completed"), 1.0);
    assert_eq!(num(summary, "lines"), 0.0);
}

#[test]
fn set_hop_reprices_a_tiered_session_mid_stream() {
    // Two tiers: tier-1 cloud one hop away, tier-2 cloud behind a second
    // (pricier) hop. `set-hop` on hop 1 reprices the deep cloud only.
    let spec = PlatformSpec::builder()
        .edges(vec![0.5, 0.8])
        .tier(1.0, 1.0)
        .cloud(1.0)
        .tier(2.0, 3.0)
        .cloud(1.0)
        .build();
    let inst = Instance::new(spec, vec![]).unwrap();
    let input = r#"
{"origin": 0, "release": 1.0, "work": 2.0, "up": 0.5, "dn": 0.25}
{"type": "platform", "op": "set-hop", "hop": 1, "up": 4.0, "dn": 0.5}
"#;
    let cfg = ServeConfig {
        stats_every: Some(1),
        ..ServeConfig::default()
    };
    let recs = serve_lines(&inst, &cfg, input);

    let oks: Vec<_> = recs
        .iter()
        .filter(|r| kind_of(r) == "platform-ok")
        .collect();
    assert_eq!(oks.len(), 1);
    assert_eq!(txt(oks[0], "op"), "set-hop");
    assert_eq!(num(oks[0], "version"), 2.0);

    // The v4 stats payload reports the tier depth and per-tier live
    // cloud counts on tiered sessions.
    let stats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "stats").collect();
    assert!(!stats.is_empty());
    assert_eq!(num(stats[0], "tiers"), 2.0);
    assert_eq!(txt(stats[0], "clouds_by_tier"), "1,1");

    let summary = recs.last().unwrap();
    assert_eq!(num(summary, "rejected"), 0.0);
    assert_eq!(num(summary, "completed"), 1.0);
}

#[test]
fn flat_sessions_report_depth_one_and_reject_set_hop() {
    let inst = platform();
    let input = r#"
{"type": "platform", "op": "set-hop", "hop": 0, "up": 2.0, "dn": 2.0}
{"origin": 0, "release": 1.0, "work": 2.0}
"#;
    let cfg = ServeConfig {
        stats_every: Some(1),
        ..ServeConfig::default()
    };
    let recs = serve_lines(&inst, &cfg, input);
    let rejects: Vec<_> = recs.iter().filter(|r| kind_of(r) == "reject").collect();
    assert_eq!(rejects.len(), 1);
    assert_eq!(txt(rejects[0], "code"), "unknown-hop");
    assert!(txt(rejects[0], "error").contains("unknown tier hop 0"));
    // A flat platform is a depth-1 continuum with unit hops.
    let stats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "stats").collect();
    assert_eq!(num(stats[0], "tiers"), 1.0);
}

#[test]
fn rejects_carry_stable_codes_and_fields() {
    let inst = platform();
    let input = r#"
not json at all
{"origin": 0, "work": 2.0, "bogus": 1}
{"work": 2.0}
{"origin": 0, "work": -1.0}
{"origin": 0, "work": "heavy"}
{"type": "platform", "op": "warp", "unit": 0}
{"type": "platform", "op": "set-edge-speed", "unit": 99, "speed": 2.0}
"#;
    let recs = serve_lines(&inst, &ServeConfig::default(), input);
    let rejects: Vec<_> = recs.iter().filter(|r| kind_of(r) == "reject").collect();
    let got: Vec<(&str, &str)> = rejects
        .iter()
        .map(|r| {
            let field = if has_field(r, "field") {
                txt(r, "field")
            } else {
                ""
            };
            (txt(r, "code"), field)
        })
        .collect();
    assert_eq!(
        got,
        vec![
            ("parse-error", ""),
            ("unknown-field", "bogus"),
            ("missing-field", "origin"),
            ("bad-value", "work"),
            ("bad-type", "work"),
            ("unknown-op", "op"),
            ("unknown-edge", "op"),
        ]
    );
}

#[test]
fn serve_binary_round_trips_ndjson() {
    use std::io::Write;

    let dir = std::env::temp_dir().join(format!("mmsec-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst_path = dir.join("platform.txt");
    std::fs::write(&inst_path, platform().to_text()).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_mmsec"))
        .args(["serve", "--instance", inst_path.to_str().unwrap()])
        .args(["--policy", "srpt", "--heartbeat", "5", "--stats-every", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"origin\": 0, \"release\": 1.0, \"work\": 2.0}\n\
              {\"origin\": 1, \"release\": 2.0, \"work\": 1.0, \"up\": 0.5, \"dn\": 0.5}\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stdout = String::from_utf8(out.stdout).unwrap();
    let recs: Vec<_> = stdout.lines().map(|l| parse_object(l).unwrap()).collect();
    assert_eq!(kind_of(&recs[0]), "hello");
    assert_eq!(kind_of(recs.last().unwrap()), "summary");
    assert_eq!(num(recs.last().unwrap(), "completed"), 2.0);
    assert_eq!(
        recs.iter().filter(|r| kind_of(r) == "completion").count(),
        2
    );
    // --stats-every 1: one stats record per input line, numbered 1..=2,
    // each carrying the v4 payload.
    let stats: Vec<_> = recs.iter().filter(|r| kind_of(r) == "stats").collect();
    assert_eq!(stats.len(), 2);
    for (i, rec) in stats.iter().enumerate() {
        assert_eq!(num(rec, "line"), (i + 1) as f64);
        assert_eq!(num(rec, "v"), 4.0);
        assert!(has_field(rec, "pending"));
        assert!(has_field(rec, "decides"));
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_flags_with_usage_exit_code() {
    let out = Command::new(env!("CARGO_BIN_EXE_mmsec"))
        .args(["serve", "--instance", "x.txt", "--hartbeat", "5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Missing instance file is an I/O error: exit 3.
    let out = Command::new(env!("CARGO_BIN_EXE_mmsec"))
        .args(["serve", "--instance", "/nonexistent/platform.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
}
