//! Reproducibility: everything is a pure function of its seeds — policies,
//! generators, the parallel runner, and whole experiment points.

use mmsec_bench::{evaluate_point, Scale};
use mmsec_core::PolicyKind;
use mmsec_platform::obs::NullObserver;
use mmsec_platform::{EngineOptions, FaultConfig, Simulation};
use mmsec_sim::Time;
use mmsec_workload::{KangConfig, RandomCcrConfig};

#[test]
fn policies_are_deterministic() {
    let cfg = RandomCcrConfig {
        n: 50,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(3);
    for kind in PolicyKind::ALL {
        let mut a = kind.build(5);
        let mut b = kind.build(5);
        let ra = Simulation::of(&inst).policy(a.as_mut()).run().unwrap();
        let rb = Simulation::of(&inst).policy(b.as_mut()).run().unwrap();
        assert_eq!(ra.schedule, rb.schedule, "{kind} is nondeterministic");
    }
}

/// Fault injection with a zero-failure model must be a no-op: the compiled
/// plan is empty and the engine takes the exact fault-free code
/// path, so every registry policy produces a bit-identical schedule.
#[test]
fn zero_failure_fault_model_is_bit_identical() {
    let cfg = RandomCcrConfig {
        n: 50,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(3);
    let plan =
        FaultConfig::none(inst.spec.num_edge(), inst.spec.num_cloud()).compile(11, Time::new(1e6));
    assert!(plan.is_empty());
    for kind in PolicyKind::ALL {
        let mut a = kind.build(5);
        let mut b = kind.build(5);
        let ra = Simulation::of(&inst).policy(a.as_mut()).run().unwrap();
        let rb = Simulation::of(&inst)
            .policy(b.as_mut())
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(
            ra.schedule, rb.schedule,
            "{kind} differs under the zero-failure fault model"
        );
        assert_eq!(ra.stats.events, rb.stats.events);
        assert_eq!(ra.stats.restarts, rb.stats.restarts);
    }
}

/// The observability layer must not perturb the simulation: for every
/// registry policy, attaching a [`NullObserver`] produces
/// exactly the schedule of the unobserved run.
#[test]
fn null_observer_does_not_change_schedules() {
    let cfg = RandomCcrConfig {
        n: 50,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(3);
    for kind in PolicyKind::ALL {
        let mut plain = kind.build(5);
        let mut observed = kind.build(5);
        let a = Simulation::of(&inst).policy(plain.as_mut()).run().unwrap();
        let mut obs = NullObserver;
        let b = Simulation::of(&inst)
            .policy(observed.as_mut())
            .observer(&mut obs)
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule, "{kind} perturbed by observer");
        assert_eq!(a.stats.restarts, b.stats.restarts);
    }
}

/// Extends the null-observer pin to the full telemetry stack: metrics +
/// flight recorder fanned out to both the engine and the policy, plus
/// the phase profiler — the run must still be bit-identical to the
/// unobserved one, with matching discrete stats.
#[test]
fn full_telemetry_does_not_change_schedules() {
    use mmsec_platform::obs::{Fanout, FlightRecorder, MetricsRecorder, PhaseProfiler, Shared};
    let cfg = RandomCcrConfig {
        n: 50,
        num_cloud: 4,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(3);
    for kind in PolicyKind::ALL {
        let mut plain = kind.build(5);
        let mut observed = kind.build(5);
        let a = Simulation::of(&inst).policy(plain.as_mut()).run().unwrap();

        let metrics = Shared::new(MetricsRecorder::new());
        let flight = Shared::new(FlightRecorder::with_capacity(32));
        let mut fan = Fanout::new();
        fan.push(Box::new(metrics.clone()));
        fan.push(Box::new(flight.clone()));
        let shared_fan = Shared::new(fan);
        observed.attach_observer(shared_fan.handle());
        let mut engine_side = shared_fan.clone();
        let mut profiler = PhaseProfiler::new();
        let b = Simulation::of(&inst)
            .policy(observed.as_mut())
            .observer(&mut engine_side)
            .profiler(&mut profiler)
            .run()
            .unwrap();
        assert_eq!(a.schedule, b.schedule, "{kind} perturbed by telemetry");
        assert_eq!(a.stats.events, b.stats.events);
        assert_eq!(a.stats.decides, b.stats.decides);
        assert_eq!(a.stats.restarts, b.stats.restarts);
        assert!(profiler.steps() > 0, "{kind}: profiler saw no steps");
        assert!(
            metrics.with(|m| m.stretch().count()) > 0,
            "{kind}: no completion reached the metrics recorder"
        );
        assert!(
            flight.with(|f| f.total_seen()) > 0,
            "{kind}: no event reached the flight ring"
        );
    }
}

#[test]
fn generators_are_pure_functions_of_seed() {
    let r = RandomCcrConfig {
        n: 200,
        ..RandomCcrConfig::default()
    };
    assert_eq!(r.generate(42), r.generate(42));
    assert_ne!(r.generate(42), r.generate(43));
    let k = KangConfig {
        n: 200,
        ..KangConfig::default()
    };
    assert_eq!(k.generate(42), k.generate(42));
    assert_ne!(k.generate(42), k.generate(43));
}

#[test]
fn experiment_points_independent_of_thread_count() {
    let cfg = RandomCcrConfig {
        n: 40,
        num_cloud: 3,
        slow_edges: 2,
        fast_edges: 2,
        ..RandomCcrConfig::default()
    };
    let policies = [PolicyKind::Srpt, PolicyKind::SsfEdf];
    let serial = evaluate_point(
        |s| cfg.generate(s),
        &policies,
        5,
        1,
        77,
        EngineOptions::default(),
        false,
    );
    let parallel = evaluate_point(
        |s| cfg.generate(s),
        &policies,
        5,
        4,
        77,
        EngineOptions::default(),
        false,
    );
    for p in 0..policies.len() {
        assert_eq!(serial.max_stretch[p].mean, parallel.max_stretch[p].mean);
        assert_eq!(serial.max_stretch[p].std, parallel.max_stretch[p].std);
    }
}

#[test]
fn full_figures_reproduce_bit_identically() {
    let scale = Scale {
        reps: 2,
        n_random: 25,
        kang_ns: vec![10],
        threads: 2,
        validate: false,
    };
    let a = mmsec_bench::experiments::fig2a(&scale, 9).table.to_csv();
    let b = mmsec_bench::experiments::fig2a(&scale, 9).table.to_csv();
    assert_eq!(a, b);
    let c = mmsec_bench::experiments::fig2c(&scale, 9).table.to_csv();
    let d = mmsec_bench::experiments::fig2c(&scale, 9).table.to_csv();
    assert_eq!(c, d);
}

#[test]
fn different_seeds_change_results() {
    let scale = Scale {
        reps: 2,
        n_random: 25,
        kang_ns: vec![10],
        threads: 2,
        validate: false,
    };
    let a = mmsec_bench::experiments::fig2a(&scale, 1).table.to_csv();
    let b = mmsec_bench::experiments::fig2a(&scale, 2).table.to_csv();
    assert_ne!(a, b);
}
