//! Integration: every policy, on every workload family, always produces a
//! schedule satisfying every §III-B constraint, with well-defined
//! stretches.

use mmsec_core::PolicyKind;
use mmsec_platform::{validate, Simulation, StretchReport};
use mmsec_workload::{KangConfig, RandomCcrConfig};

fn check_all_policies(instance: &mmsec_platform::Instance, label: &str) {
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(99);
        let out = Simulation::of(instance)
            .policy(policy.as_mut())
            .run()
            .unwrap_or_else(|e| panic!("{label}/{kind}: {e}"));
        assert!(out.schedule.all_finished(), "{label}/{kind}: unfinished");
        if let Err(violations) = validate(instance, &out.schedule) {
            panic!(
                "{label}/{kind}: {} violations, first: {}",
                violations.len(),
                violations[0]
            );
        }
        let report = StretchReport::new(instance, &out.schedule);
        assert!(
            report.max_stretch >= 1.0 - 1e-9,
            "{label}/{kind}: max stretch {} < 1",
            report.max_stretch
        );
        for (i, &s) in report.stretches.iter().enumerate() {
            assert!(s >= 1.0 - 1e-9, "{label}/{kind}: job {i} stretch {s} < 1");
        }
    }
}

#[test]
fn random_ccr_instances_across_ccrs() {
    for ccr in [0.1, 1.0, 10.0] {
        let cfg = RandomCcrConfig {
            n: 60,
            ccr,
            num_cloud: 5,
            slow_edges: 3,
            fast_edges: 3,
            ..RandomCcrConfig::default()
        };
        for seed in 0..3 {
            let inst = cfg.generate(seed);
            check_all_policies(&inst, &format!("ccr{ccr}/seed{seed}"));
        }
    }
}

#[test]
fn random_ccr_instances_under_load() {
    for load in [0.05, 0.5, 2.0] {
        let cfg = RandomCcrConfig {
            n: 50,
            ccr: 1.0,
            load,
            num_cloud: 4,
            slow_edges: 2,
            fast_edges: 2,
            ..RandomCcrConfig::default()
        };
        let inst = cfg.generate(11);
        check_all_policies(&inst, &format!("load{load}"));
    }
}

#[test]
fn kang_instances() {
    for (num_edge, seed) in [(6usize, 0u64), (20, 1)] {
        let cfg = KangConfig {
            num_edge,
            num_cloud: 4,
            n: 60,
            ..KangConfig::default()
        };
        let inst = cfg.generate(seed);
        check_all_policies(&inst, &format!("kang{num_edge}"));
    }
}

#[test]
fn degenerate_platforms() {
    // Single edge, no cloud (cloud-only baseline excluded).
    let cfg = RandomCcrConfig {
        n: 20,
        num_cloud: 0,
        slow_edges: 1,
        fast_edges: 0,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(5);
    for kind in [
        PolicyKind::EdgeOnly,
        PolicyKind::Greedy,
        PolicyKind::Srpt,
        PolicyKind::SsfEdf,
        PolicyKind::Fcfs,
        PolicyKind::Random,
    ] {
        let mut policy = kind.build(1);
        let out = Simulation::of(&inst).policy(policy.as_mut()).run().unwrap();
        assert!(validate(&inst, &out.schedule).is_ok(), "{kind}");
    }

    // Many clouds, one job.
    let cfg = RandomCcrConfig {
        n: 1,
        num_cloud: 8,
        slow_edges: 1,
        fast_edges: 1,
        ..RandomCcrConfig::default()
    };
    let inst = cfg.generate(6);
    check_all_policies(&inst, "one-job");
}

#[test]
fn simultaneous_releases_burst() {
    // Everything released at t = 0 (load → ∞ stress).
    use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec};
    let spec = PlatformSpec::builder()
        .edges(vec![0.3, 0.3])
        .cloud_pool(3)
        .build();
    let jobs: Vec<Job> = (0..30)
        .map(|i| {
            Job::new(
                EdgeId(i % 2),
                0.0,
                1.0 + (i % 5) as f64,
                0.2 * (i % 3) as f64,
                0.1,
            )
        })
        .collect();
    let inst = Instance::new(spec, jobs).unwrap();
    check_all_policies(&inst, "burst");
}
