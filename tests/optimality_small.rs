//! Oracle tests on tiny instances: heuristics versus exact solvers.

use mmsec_core::PolicyKind;
use mmsec_offline::brute::optimal_mmsh;
use mmsec_offline::reductions::mmsh_to_mmseco;
use mmsec_offline::{optimal_order_based, MmshInstance};
use mmsec_platform::{validate, EdgeId, Instance, Job, PlatformSpec, Simulation, StretchReport};
use mmsec_sim::seed::SplitMix64;

/// On Theorem-3 embeddings (homogeneous, no comms, no releases) the exact
/// MMSH optimum is the true optimum; no heuristic may beat it, and the
/// good heuristics should stay within a modest factor.
#[test]
fn heuristics_bounded_by_exact_optimum_on_mmsh_embeddings() {
    let mut rng = SplitMix64::new(7);
    for trial in 0..8 {
        let n_jobs = 4 + (rng.next_u64() % 3) as usize;
        let procs = 2 + (rng.next_u64() % 2) as usize;
        let works: Vec<f64> = (0..n_jobs)
            .map(|_| 1.0 + (rng.next_u64() % 9) as f64)
            .collect();
        let mmsh = MmshInstance::new(procs, works.clone());
        let opt = optimal_mmsh(&mmsh).max_stretch;
        let eco = mmsh_to_mmseco(&mmsh);
        for kind in PolicyKind::PAPER {
            let mut policy = kind.build(trial);
            let out = Simulation::of(&eco).policy(policy.as_mut()).run().unwrap();
            assert!(validate(&eco, &out.schedule).is_ok());
            let got = StretchReport::new(&eco, &out.schedule).max_stretch;
            assert!(
                got >= opt - 1e-6,
                "{kind} beat the optimum on {works:?}/{procs}: {got} < {opt}"
            );
            // Loose quality envelope — catches gross regressions.
            // (Edge-Only ignores the cloud processors entirely, so its
            // only envelope here is n: on one machine SPT-like behavior
            // gives stretch ≤ n.)
            let factor = if kind == PolicyKind::EdgeOnly {
                n_jobs as f64
            } else {
                3.0
            };
            assert!(
                got <= factor * opt + 1e-6,
                "{kind} too far from optimal on {works:?}/{procs}: {got} vs {opt}"
            );
        }
    }
}

/// On generic tiny edge-cloud instances, the order-based exhaustive oracle
/// upper-bounds what a sane offline scheduler achieves; heuristics must
/// stay within a constant factor of it, and every schedule must validate.
#[test]
fn heuristics_near_oracle_on_tiny_edge_cloud_instances() {
    let mut rng = SplitMix64::new(99);
    for trial in 0..6 {
        let n = 4 + (rng.next_u64() % 2) as usize; // 4..5 jobs
        let spec = PlatformSpec::builder()
            .edges(vec![0.25, 0.5])
            .cloud_pool(2)
            .build();
        let jobs: Vec<Job> = (0..n)
            .map(|_| {
                Job::new(
                    EdgeId((rng.next_u64() % 2) as usize),
                    (rng.next_u64() % 8) as f64,
                    1.0 + (rng.next_u64() % 5) as f64,
                    (rng.next_u64() % 3) as f64 * 0.5,
                    (rng.next_u64() % 3) as f64 * 0.5,
                )
            })
            .collect();
        let inst = Instance::new(spec, jobs).unwrap();
        let oracle = optimal_order_based(&inst).max_stretch;
        for kind in [PolicyKind::Greedy, PolicyKind::Srpt, PolicyKind::SsfEdf] {
            let mut policy = kind.build(trial);
            let out = Simulation::of(&inst).policy(policy.as_mut()).run().unwrap();
            assert!(validate(&inst, &out.schedule).is_ok(), "{kind}");
            let got = StretchReport::new(&inst, &out.schedule).max_stretch;
            assert!(
                got <= 4.0 * oracle + 1e-6,
                "{kind} far from the oracle (trial {trial}): {got} vs {oracle}"
            );
        }
    }
}

/// SSF-EDF matches the exact optimum on instances easy enough that EDF
/// placement is optimal (jobs spread over enough processors).
#[test]
fn ssf_edf_is_optimal_when_capacity_abounds() {
    let mmsh = MmshInstance::new(4, vec![3.0, 1.0, 2.0, 4.0]);
    let eco = mmsh_to_mmseco(&mmsh);
    let mut policy = PolicyKind::SsfEdf.build(0);
    let out = Simulation::of(&eco).policy(policy.as_mut()).run().unwrap();
    let got = StretchReport::new(&eco, &out.schedule).max_stretch;
    assert!((got - 1.0).abs() < 1e-6, "got {got}");
}

/// Exhaustive oracle agrees with the single-machine offline optimum on
/// one-processor instances without preemption benefit (no releases).
#[test]
fn oracle_matches_single_machine_optimum() {
    use mmsec_offline::single_machine::{optimal_max_stretch, OfflineJob};
    let works = [2.0, 5.0, 1.0, 3.0];
    let mmsh = MmshInstance::new(1, works.to_vec());
    let eco = mmsh_to_mmseco(&mmsh);
    let oracle = optimal_order_based(&eco).max_stretch;
    let jobs: Vec<OfflineJob> = works.iter().map(|&w| OfflineJob::plain(0.0, w)).collect();
    let single = optimal_max_stretch(&jobs, 1e-7);
    assert!(
        (oracle - single).abs() < 1e-4,
        "oracle {oracle} vs single-machine {single}"
    );
}
