//! Smoke tests: every experiment of the harness runs end-to-end at tiny
//! scale and produces well-formed output with the expected qualitative
//! ordering between heuristics.

use mmsec_bench::experiments;
use mmsec_bench::{evaluate_point, Scale};
use mmsec_core::PolicyKind;
use mmsec_platform::EngineOptions;
use mmsec_workload::RandomCcrConfig;

fn tiny() -> Scale {
    Scale {
        reps: 3,
        n_random: 40,
        kang_ns: vec![15, 30],
        threads: 2,
        validate: true,
    }
}

#[test]
fn every_figure_regenerates() {
    let s = tiny();
    for (fig, rows) in [
        (experiments::fig2a(&s, 1), experiments::CCR_SWEEP.len()),
        (experiments::fig2b(&s, 1), experiments::LOAD_SWEEP.len()),
        (experiments::fig2c(&s, 1), 2),
        (experiments::fig2d(&s, 1), 2),
        (experiments::exec_times(&s, 1), 4),
    ] {
        assert_eq!(fig.table.num_rows(), rows, "{}", fig.id);
        let md = fig.to_markdown();
        assert!(md.contains(fig.id));
        let csv = fig.table.to_csv();
        assert!(csv.lines().count() == rows + 1);
    }
}

#[test]
fn every_ablation_regenerates() {
    let s = tiny();
    assert!(experiments::ablation_alpha(&s, 1).table.num_rows() > 0);
    assert!(experiments::ablation_ports(&s, 1).table.num_rows() > 0);
    assert!(experiments::ablation_preemption(&s, 1).table.num_rows() > 0);
    assert!(experiments::ext_heterogeneous(&s, 1).table.num_rows() > 0);
    assert!(experiments::ext_windows(&s, 1).table.num_rows() > 0);
}

/// The headline qualitative claim of §VI at compute-friendly CCR: the
/// cloud-using heuristics beat Edge-Only by a wide margin, and SSF-EDF is
/// the best of them. Averaged over enough instances to be stable.
#[test]
fn qualitative_ordering_at_low_ccr() {
    let cfg = RandomCcrConfig {
        n: 80,
        ccr: 0.1,
        load: 0.05,
        num_cloud: 8,
        slow_edges: 4,
        fast_edges: 4,
        ..RandomCcrConfig::default()
    };
    let policies = [PolicyKind::EdgeOnly, PolicyKind::Srpt, PolicyKind::SsfEdf];
    let point = evaluate_point(
        |s| cfg.generate(s),
        &policies,
        12,
        4,
        1234,
        EngineOptions::default(),
        true,
    );
    let edge_only = point.max_stretch[0].mean;
    let srpt = point.max_stretch[1].mean;
    let ssf = point.max_stretch[2].mean;
    assert!(
        ssf < edge_only && srpt < edge_only,
        "cloud heuristics must beat Edge-Only at CCR 0.1: ssf {ssf}, srpt {srpt}, edge-only {edge_only}"
    );
    assert!(
        ssf <= srpt + 0.5,
        "SSF-EDF should be at least comparable to SRPT: {ssf} vs {srpt}"
    );
}
