//! The paper's Figure 1 worked example as a test: the reconstructed
//! optimal schedule is valid and achieves max-stretch 3/2; no online
//! heuristic beats it (3/2 is optimal — see the window-counting argument
//! in DESIGN.md); per-job facts from the paper's §III-C discussion hold.

use mmsec_core::PolicyKind;
use mmsec_platform::metrics::try_report;
use mmsec_platform::schedule::TraceBuilder;
use mmsec_platform::{
    figure1_instance, validate, CloudId, JobId, Phase, Simulation, StretchReport, Target,
};
use mmsec_sim::{Interval, Time};

fn optimal_schedule() -> mmsec_platform::Schedule {
    let mut tb = TraceBuilder::new(6);
    let cloud = Target::Cloud(CloudId(0));
    let iv = Interval::from_secs;
    tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 3.0));
    tb.record(JobId(3), Phase::Compute, Target::Edge, iv(5.0, 6.0));
    tb.record(JobId(5), Phase::Compute, Target::Edge, iv(6.0, 7.0));
    tb.record(JobId(3), Phase::Compute, Target::Edge, iv(7.0, 10.0));
    tb.record(JobId(1), Phase::Uplink, cloud, iv(0.0, 2.0));
    tb.record(JobId(1), Phase::Compute, cloud, iv(2.0, 6.0));
    tb.record(JobId(1), Phase::Downlink, cloud, iv(6.0, 8.0));
    tb.record(JobId(2), Phase::Uplink, cloud, iv(3.0, 4.0));
    tb.record(JobId(2), Phase::Compute, cloud, iv(6.0, 8.0));
    tb.record(JobId(2), Phase::Downlink, cloud, iv(8.0, 9.0));
    tb.record(JobId(4), Phase::Uplink, cloud, iv(6.0, 7.0));
    tb.record(JobId(4), Phase::Compute, cloud, iv(8.0, 10.0));
    tb.record(JobId(4), Phase::Downlink, cloud, iv(10.0, 11.0));
    tb.complete(JobId(0), Time::new(3.0));
    tb.complete(JobId(1), Time::new(8.0));
    tb.complete(JobId(2), Time::new(9.0));
    tb.complete(JobId(3), Time::new(10.0));
    tb.complete(JobId(4), Time::new(11.0));
    tb.complete(JobId(5), Time::new(7.0));
    tb.finish()
}

#[test]
fn paper_job_parameters() {
    let inst = figure1_instance();
    let spec = &inst.spec;
    // §III-C: J1 and J6 run at their minimum time on the edge (cloud
    // would cost ≥ 10 units of communication).
    assert_eq!(inst.job(JobId(0)).edge_time(spec), 3.0);
    assert_eq!(inst.job(JobId(0)).best_cloud_time(spec), 11.0);
    assert_eq!(inst.job(JobId(5)).edge_time(spec), 1.0);
    // J2: 12 on the edge, 8 on the cloud.
    assert_eq!(inst.job(JobId(1)).edge_time(spec), 12.0);
    assert_eq!(inst.job(JobId(1)).best_cloud_time(spec), 8.0);
    // J3 and J5 share characteristics: 6 on the edge, 4 on the cloud.
    for id in [JobId(2), JobId(4)] {
        assert_eq!(inst.job(id).edge_time(spec), 6.0);
        assert_eq!(inst.job(id).best_cloud_time(spec), 4.0);
    }
    // J4: 4 units minimum, on the edge; cloud would cost 10 + 4/3.
    assert!((inst.job(JobId(3)).edge_time(spec) - 4.0).abs() < 1e-12);
    assert!((inst.job(JobId(3)).best_cloud_time(spec) - (10.0 + 4.0 / 3.0)).abs() < 1e-12);
}

#[test]
fn reconstructed_schedule_is_valid_and_achieves_three_halves() {
    let inst = figure1_instance();
    let schedule = optimal_schedule();
    assert_eq!(validate(&inst, &schedule), Ok(()));
    let report = StretchReport::new(&inst, &schedule);
    // J1, J6 at stretch 1; J2 at 1 (8 = its min time); J4 at 5/4 (paper:
    // preempted once by J6); J3, J5 at 3/2.
    let expect = [1.0, 1.0, 1.5, 1.25, 1.5, 1.0];
    for (i, (&got, &want)) in report.stretches.iter().zip(&expect).enumerate() {
        assert!(
            (got - want).abs() < 1e-9,
            "job {i}: stretch {got}, expected {want}"
        );
    }
    assert!((report.max_stretch - 1.5).abs() < 1e-12);
}

#[test]
fn try_report_agrees_with_figure1() {
    // The fallible path must agree with `StretchReport::new` on the
    // reconstructed optimum: same max stretch, and the argmax is the
    // first job attaining it (J3, stretch 3/2).
    let inst = figure1_instance();
    let schedule = optimal_schedule();
    let report = try_report(&inst, &schedule).expect("schedule is complete");
    assert_eq!(report, StretchReport::new(&inst, &schedule));
    assert!((report.max_stretch - 1.5).abs() < 1e-12);
    assert_eq!(report.argmax, Some(JobId(2)));
    assert!((report.stretches[2] - report.max_stretch).abs() < 1e-12);
}

#[test]
fn online_heuristics_cannot_beat_the_offline_optimum() {
    let inst = figure1_instance();
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(3);
        let out = Simulation::of(&inst).policy(policy.as_mut()).run().unwrap();
        assert!(validate(&inst, &out.schedule).is_ok(), "{kind}");
        let r = StretchReport::new(&inst, &out.schedule);
        assert!(
            r.max_stretch >= 1.5 - 1e-6,
            "{kind} beat the offline optimum: {}",
            r.max_stretch
        );
    }
}

#[test]
fn exhaustive_oracle_confirms_three_halves() {
    // The order-based exhaustive oracle (every allocation × every
    // placement order) also lands exactly on 3/2 — together with the
    // window-counting lower-bound argument (DESIGN.md) this pins the
    // optimum of the Figure 1 instance.
    let inst = figure1_instance();
    let oracle = mmsec_offline::optimal_order_based(&inst);
    assert!(
        (oracle.max_stretch - 1.5).abs() < 1e-9,
        "oracle found {}",
        oracle.max_stretch
    );
}

#[test]
fn full_overlap_at_time_six_and_a_half() {
    // The schedule exhibits the paper's four-way overlap: at t ∈ (6, 7)
    // the edge computes (J6), the cloud computes (J3), an uplink (J5) and
    // a downlink (J2) are all in flight.
    let schedule = optimal_schedule();
    let t = 6.5;
    let active = |set: &mmsec_sim::IntervalSet| set.iter().any(|iv| iv.contains(Time::new(t)));
    assert!(active(&schedule.exec[5]), "edge computes J6");
    assert!(active(&schedule.exec[2]), "cloud computes J3");
    assert!(active(&schedule.up[4]), "J5 uplink in flight");
    assert!(active(&schedule.dn[1]), "J2 downlink in flight");
}
